(* A small checker for the CIMP concrete language: variables must be
   declared before use (declarations are block-scoped to the process, as
   local state is flat), expressions must be consistently int- or
   bool-typed, guards must be bool, arithmetic must be int, and each
   channel must be used with one payload type and one reply type across
   the whole program. *)

type ty = T_int | T_bool

let pp_ty ppf = function T_int -> Fmt.string ppf "int" | T_bool -> Fmt.string ppf "bool"

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type chan_sig = { payload : ty; reply : ty }

type env = {
  vars : (string * ty) list;
  chans : (string * chan_sig) list;  (* global, accumulated *)
}

let lookup_var env x =
  match List.assoc_opt x env.vars with
  | Some ty -> ty
  | None -> error "undeclared variable %s" x

let rec infer env : Ast.expr -> ty = function
  | Ast.E_int _ -> T_int
  | Ast.E_bool _ -> T_bool
  | Ast.E_var x -> lookup_var env x
  | Ast.E_not e ->
    check env e T_bool;
    T_bool
  | Ast.E_binop (op, a, b) -> (
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul ->
      check env a T_int;
      check env b T_int;
      T_int
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      check env a T_int;
      check env b T_int;
      T_bool
    | Ast.Eq | Ast.Neq ->
      let ta = infer env a in
      check env b ta;
      T_bool
    | Ast.And | Ast.Or ->
      check env a T_bool;
      check env b T_bool;
      T_bool)

and check env e ty =
  let found = infer env e in
  if found <> ty then error "expected %a, found %a in %a" pp_ty ty pp_ty found Ast.pp_expr e

(* Record or verify a channel's signature. *)
let use_chan env ch ~payload ~reply =
  match List.assoc_opt ch env.chans with
  | None -> { env with chans = (ch, { payload; reply }) :: env.chans }
  | Some s ->
    if s.payload <> payload then
      error "channel %s payload is %a, used with %a" ch pp_ty s.payload pp_ty payload;
    if s.reply <> reply then
      error "channel %s reply is %a, used with %a" ch pp_ty s.reply pp_ty reply;
    env

let rec check_stmt env : Ast.stmt -> env = function
  | Ast.S_skip -> env
  | Ast.S_var (x, e) ->
    if List.mem_assoc x env.vars then error "variable %s redeclared" x;
    let ty = infer env e in
    { env with vars = (x, ty) :: env.vars }
  | Ast.S_assign (x, e) ->
    check env e (lookup_var env x);
    env
  | Ast.S_if (e, t, f) ->
    check env e T_bool;
    let env = check_block env t in
    check_block env f
  | Ast.S_while (e, b) ->
    check env e T_bool;
    check_block env b
  | Ast.S_loop b -> check_block env b
  | Ast.S_choose bs -> List.fold_left check_block env bs
  | Ast.S_send (ch, e, binder) ->
    let payload = infer env e in
    (* The reply binder is implicitly declared at its first use, typed by
       the channel's reply type when already known. *)
    let declared x =
      match List.assoc_opt x env.vars with
      | Some ty -> (env, ty)
      | None ->
        let ty =
          match List.assoc_opt ch env.chans with Some s -> s.reply | None -> T_int
        in
        ({ env with vars = (x, ty) :: env.vars }, ty)
    in
    let env, reply =
      match binder with None -> (env, T_int) | Some x -> declared x
    in
    use_chan env ch ~payload ~reply
  | Ast.S_recv (ch, x, reply_expr) ->
    (* The request binder is implicitly declared, typed by the channel's
       payload type when already known. *)
    let env, payload =
      match List.assoc_opt x env.vars with
      | Some ty -> (env, ty)
      | None ->
        let ty =
          match List.assoc_opt ch env.chans with Some s -> s.payload | None -> T_int
        in
        ({ env with vars = (x, ty) :: env.vars }, ty)
    in
    let reply = infer env reply_expr in
    use_chan env ch ~payload ~reply
  | Ast.S_havoc (x, lo, hi) ->
    check env lo T_int;
    check env hi T_int;
    if lookup_var env x <> T_int then error "havoc variable %s must be int" x;
    env
  | Ast.S_assert e ->
    check env e T_bool;
    env

and check_block env b = List.fold_left check_stmt env b

(* Check a whole program; channel signatures are shared across processes
   (that is the point of a rendezvous).  Returns the accumulated channel
   signatures. *)
let program (prog : Ast.program) =
  let chans =
    List.fold_left
      (fun chans (p : Ast.process) ->
        let env = check_block { vars = []; chans } p.body in
        env.chans)
      [] prog
  in
  List.rev chans
