(** Checker for the CIMP concrete language: declaration-before-use,
    int/bool consistency, bool guards, and one payload/reply signature per
    channel across the whole program.  Send/recv binders are implicitly
    declared at first use, typed by the channel's signature when already
    known. *)

type ty = T_int | T_bool

val pp_ty : ty Fmt.t

exception Error of string

type chan_sig = { payload : ty; reply : ty }

val program : Ast.program -> (string * chan_sig) list
(** Typecheck a program; returns the channel signatures.
    @raise Error on the first defect. *)
