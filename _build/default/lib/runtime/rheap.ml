(* A simulated heap for the concrete concurrent collector: a fixed arena of
   object slots, each with an allocation flag, a mark flag, and reference
   fields.  All shared cells are OCaml atomics — OCaml 5's memory model
   gives us sequential consistency for atomics, so this runtime exercises
   the *algorithm* (barriers, handshakes, racy marking) under a real
   scheduler; the TSO-specific behaviours live in the abstract model
   (lib/core), as DESIGN.md explains.

   References are slot indices; [null] (-1) is the null reference. *)

type rf = int

let null : rf = -1

type t = {
  n_slots : int;
  n_fields : int;
  allocated : bool Atomic.t array;
  epochs : int Atomic.t array;
    (* bumped on every free: lets validation detect a reference whose slot
       was freed and reallocated (the ABA case is_allocated cannot see) *)
  marks : bool Atomic.t array;
  fields : rf Atomic.t array array;  (* fields.(r).(f) *)
  free_lock : Mutex.t;
  mutable free_list : rf list;
  allocs : int Atomic.t;  (* statistics *)
  frees : int Atomic.t;
}

let make ~n_slots ~n_fields =
  {
    n_slots;
    n_fields;
    allocated = Array.init n_slots (fun _ -> Atomic.make false);
    epochs = Array.init n_slots (fun _ -> Atomic.make 0);
    marks = Array.init n_slots (fun _ -> Atomic.make false);
    fields = Array.init n_slots (fun _ -> Array.init n_fields (fun _ -> Atomic.make null));
    free_lock = Mutex.create ();
    free_list = List.init n_slots (fun i -> i);
    allocs = Atomic.make 0;
    frees = Atomic.make 0;
  }

let is_allocated h r = r <> null && Atomic.get h.allocated.(r)

let mark h r = Atomic.get h.marks.(r)

(* The mark CAS of Fig. 5 line 5-11: returns true iff we won. *)
let try_mark h r ~sense = Atomic.compare_and_set h.marks.(r) (not sense) sense

let field h r f = Atomic.get h.fields.(r).(f)
let set_field h r f v = Atomic.set h.fields.(r).(f) v

(* Atomic allocation (the paper's abstraction): pop a free slot, install
   the mark, clear the fields, publish the allocation flag. *)
let alloc h ~mark =
  Mutex.lock h.free_lock;
  let r =
    match h.free_list with
    | [] -> null
    | r :: rest ->
      h.free_list <- rest;
      r
  in
  Mutex.unlock h.free_lock;
  if r <> null then begin
    Atomic.set h.marks.(r) mark;
    Array.iter (fun f -> Atomic.set f null) h.fields.(r);
    Atomic.set h.allocated.(r) true;
    Atomic.incr h.allocs
  end;
  r

(* Fig. 2 line 44: atomic removal from the heap domain. *)
let epoch h r = Atomic.get h.epochs.(r)

let free h r =
  Atomic.set h.allocated.(r) false;
  Atomic.incr h.epochs.(r);
  Mutex.lock h.free_lock;
  h.free_list <- r :: h.free_list;
  Mutex.unlock h.free_lock;
  Atomic.incr h.frees

let domain h =
  List.filter (fun r -> Atomic.get h.allocated.(r)) (List.init h.n_slots (fun i -> i))

let live_count h =
  Array.fold_left (fun n a -> if Atomic.get a then n + 1 else n) 0 h.allocated
