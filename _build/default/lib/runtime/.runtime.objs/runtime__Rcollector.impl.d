lib/runtime/rcollector.ml: Array Atomic Domain List Rheap Rshared Unix
