lib/runtime/rshared.ml: Array Atomic List Mutex Rheap
