lib/runtime/rheap.ml: Array Atomic List Mutex
