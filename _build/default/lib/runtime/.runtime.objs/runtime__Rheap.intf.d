lib/runtime/rheap.mli: Atomic Mutex
