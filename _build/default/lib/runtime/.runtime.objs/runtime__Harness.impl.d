lib/runtime/harness.ml: Array Atomic Domain Fmt List Random Rcollector Rheap Rmutator Rshared Unix
