lib/runtime/harness.mli: Fmt Rheap Rmutator
