lib/runtime/rmutator.ml: Array Atomic Domain Fmt List Printf Random Rheap Rshared
