(** A simulated heap for the concrete concurrent collector: a fixed arena
    of object slots with atomic allocation flags, mark flags, epoch
    counters and reference fields.  All shared cells are OCaml atomics
    (sequentially consistent): this runtime exercises the algorithm under
    a real scheduler; the TSO-specific behaviours live in the abstract
    model (lib/core). *)

type rf = int

val null : rf

type t = {
  n_slots : int;
  n_fields : int;
  allocated : bool Atomic.t array;
  epochs : int Atomic.t array;
      (** bumped on every free: lets validation detect freed-and-reused
          slots (the ABA case the allocation flag cannot see) *)
  marks : bool Atomic.t array;
  fields : rf Atomic.t array array;
  free_lock : Mutex.t;
  mutable free_list : rf list;
  allocs : int Atomic.t;
  frees : int Atomic.t;
}

val make : n_slots:int -> n_fields:int -> t
val is_allocated : t -> rf -> bool
val mark : t -> rf -> bool

val try_mark : t -> rf -> sense:bool -> bool
(** The mark CAS of Fig. 5: flip the flag from [not sense] to [sense];
    returns whether we won. *)

val field : t -> rf -> int -> rf
val set_field : t -> rf -> int -> rf -> unit
val epoch : t -> rf -> int

val alloc : t -> mark:bool -> rf
(** Atomic allocation: pop a free slot, install the mark, clear the
    fields, publish.  Returns [null] on exhaustion. *)

val free : t -> rf -> unit
val domain : t -> rf list
val live_count : t -> int
