(* The concrete collector thread: Fig. 2 as running code.

   One call to [cycle] performs a full mark-sweep cycle — the four no-op
   initialization handshakes, the root-marking handshake, the mark loop
   with its termination handshakes, and the sweep.  [run] loops cycles
   until the harness raises the stop flag. *)

open Rshared

let handshake sh typ =
  Array.iter (fun slot -> Atomic.set slot typ) sh.hs_req;
  Array.iter
    (fun slot ->
      while Atomic.get slot <> Hs_none do
        Domain.cpu_relax ()
      done)
    sh.hs_req

(* Scan greys depth-first: marking a child greys it onto the same stack;
   popping an object blackens it (its children have been marked). *)
let rec drain sh stack =
  match stack with
  | [] -> ()
  | r :: rest ->
    if sh.trace_pause > 0. then Unix.sleepf sh.trace_pause;
    let stack = ref rest in
    for f = 0 to sh.heap.Rheap.n_fields - 1 do
      stack := mark sh (Rheap.field sh.heap r f) !stack
    done;
    drain sh !stack

let cycle sh =
  (* lines 3-4: everyone sees Idle; the heap is black *)
  handshake sh Hs_nop;
  (* line 5: flip the sense — the heap becomes white *)
  Atomic.set sh.f_m (not (Atomic.get sh.f_m));
  handshake sh Hs_nop;
  (* line 8: barriers on *)
  Atomic.set sh.phase Init;
  handshake sh Hs_nop;
  (* lines 11-12: allocate black from here on *)
  Atomic.set sh.phase Mark;
  Atomic.set sh.f_a (Atomic.get sh.f_m);
  handshake sh Hs_nop;
  (* lines 15-20: sample and mark the roots, raggedly *)
  handshake sh Hs_get_roots;
  (* lines 24-34: trace, then poll the mutators for leftover greys *)
  let rec mark_loop () =
    let w = take_global sh in
    if w <> [] then begin
      drain sh w;
      handshake sh Hs_get_work;
      mark_loop ()
    end
  in
  mark_loop ();
  (* lines 37-45: free the whites *)
  Atomic.set sh.phase Sweep;
  let sense = Atomic.get sh.f_m in
  List.iter
    (fun r -> if Rheap.mark sh.heap r <> sense then Rheap.free sh.heap r)
    (Rheap.domain sh.heap);
  (* line 46 *)
  Atomic.set sh.phase Idle;
  Atomic.incr sh.cycles

let run sh =
  while not (Atomic.get sh.stop) do
    cycle sh
  done;
  (* release any mutator parked on a handshake we will never complete *)
  Array.iter (fun slot -> Atomic.set slot Hs_none) sh.hs_req
