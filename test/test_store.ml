(* Tests for the tiered state store (lib/store): the varint codec's
   totality on the 63-bit range, Bloom-filter soundness, segment
   round-trips, spill equivalence against the all-RAM checker, merges
   under concurrent inserts, and checkpoint/resume — including recovery
   from a crash that left half-written snapshot debris behind. *)

open Cimp

type com = (int, int, int) Com.t

let proc c data = Com.make [ c ] data

let tmp_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Fmt.str "test-store-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

(* -- codec ------------------------------------------------------------------- *)

let test_varint_roundtrip () =
  let cases =
    [
      0; 1; 127; 128; 300; 0x3FFF_FFFF; max_int; min_int; -1; -42;
      1 lsl 62; (1 lsl 62) lor 12345; min_int + 1;
    ]
  in
  let b = Buffer.create 64 in
  List.iter (fun v -> Store.Codec.add_varint b v) cases;
  let bytes = Buffer.to_bytes b in
  let pos = ref 0 in
  List.iter
    (fun v ->
      let got, pos' = Store.Codec.get_varint bytes !pos in
      Alcotest.(check int) (Fmt.str "varint %d" v) v got;
      Alcotest.(check bool)
        (Fmt.str "bounded encoding of %d" v)
        true
        (pos' - !pos <= Store.Codec.max_varint_bytes);
      pos := pos')
    cases;
  Alcotest.(check int) "stream fully consumed" (Bytes.length bytes) !pos

(* -- bloom ------------------------------------------------------------------- *)

let test_bloom_no_false_negatives () =
  let n = 5_000 in
  let f = Store.Bloom.create ~expected:n in
  let key i = (i * 2654435761) lxor (i lsl 31) in
  for i = 1 to n do
    Store.Bloom.add f (key i)
  done;
  for i = 1 to n do
    if not (Store.Bloom.mem f (key i)) then
      Alcotest.failf "false negative for key %d" (key i)
  done;
  (* false positives exist but must be rare: probe n fresh keys *)
  let fp = ref 0 in
  for i = n + 1 to 2 * n do
    if Store.Bloom.mem f (key i) then incr fp
  done;
  Alcotest.(check bool)
    (Fmt.str "false-positive rate %.2f%% < 5%%" (100. *. float_of_int !fp /. float_of_int n))
    true
    (float_of_int !fp /. float_of_int n < 0.05);
  (* serialization round-trip preserves answers *)
  let b = Buffer.create 1024 in
  Store.Bloom.write b f;
  let f', pos = Store.Bloom.read (Buffer.to_bytes b) 0 in
  Alcotest.(check int) "self-delimiting" (Buffer.length b) pos;
  for i = 1 to n do
    if not (Store.Bloom.mem f' (key i)) then
      Alcotest.failf "false negative after round-trip for key %d" (key i)
  done

(* -- segment ----------------------------------------------------------------- *)

let test_segment_roundtrip () =
  let dir = tmp_dir "seg" in
  let n = 2_000 in
  (* adversarial fingerprints: dense positives, negatives (rendezvous
     kind bit), and extremes — sorted by plain int order as the store
     dumps them *)
  let fps =
    Array.init n (fun i ->
        match i mod 4 with
        | 0 -> i + 1
        | 1 -> -(i * 7) - 1
        | 2 -> (i * 2654435761) lxor (1 lsl 55)
        | _ -> min_int + (i * 13) + 1)
    |> Array.to_list
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let entries =
    Array.map
      (fun fp ->
        {
          Store.Segment.fp;
          parent = fp lxor 0x55;
          event = (if fp land 1 = 0 then -fp else fp lsr 3);
          meta = fp land 0x7FFF_FFFF;
        })
      fps
  in
  let path = Filename.concat dir "t.seg" in
  let seg = Store.Segment.write ~path ~shard:3 ~seq:7 ~max_depth:42 entries in
  Alcotest.(check int) "length" (Array.length entries) (Store.Segment.length seg);
  (* reload from disk and probe every entry through the Bloom + index path *)
  let seg = Store.Segment.load path in
  Alcotest.(check int) "shard" 3 (Store.Segment.shard seg);
  Alcotest.(check int) "seq" 7 (Store.Segment.seq seg);
  Alcotest.(check int) "max_depth" 42 (Store.Segment.max_depth seg);
  Array.iter
    (fun (e : Store.Segment.entry) ->
      Alcotest.(check bool) "bloom sees it" true (Store.Segment.maybe seg e.Store.Segment.fp);
      match Store.Segment.find seg e.Store.Segment.fp with
      | None -> Alcotest.failf "lost fingerprint %d" e.Store.Segment.fp
      | Some got ->
        Alcotest.(check int) "parent" e.Store.Segment.parent got.Store.Segment.parent;
        Alcotest.(check int) "event" e.Store.Segment.event got.Store.Segment.event;
        Alcotest.(check int) "meta" e.Store.Segment.meta got.Store.Segment.meta)
    entries;
  (* absent keys answer None (Bloom may pass, the block scan must not) *)
  let present = Hashtbl.create 256 in
  Array.iter (fun (e : Store.Segment.entry) -> Hashtbl.replace present e.Store.Segment.fp ()) entries;
  for i = 1 to 1_000 do
    let fp = (i * 48271) lxor (1 lsl 40) in
    if not (Hashtbl.mem present fp) then
      Alcotest.(check bool)
        (Fmt.str "absent %d stays absent" fp)
        true
        (Store.Segment.find seg fp = None)
  done;
  (* iter yields the entries back in order *)
  let seen = ref [] in
  Store.Segment.iter seg (fun e -> seen := e.Store.Segment.fp :: !seen);
  Alcotest.(check (list int))
    "iter in fingerprint order"
    (Array.to_list (Array.map (fun (e : Store.Segment.entry) -> e.Store.Segment.fp) entries))
    (List.rev !seen);
  rm_rf dir

(* -- tiered store under concurrent inserts ----------------------------------- *)

(* Hammer one logical key-space from several domains with a budget small
   enough to force repeated freezes and merges mid-insert, then verify
   every key is present exactly once with its best depth. *)
let test_merge_under_concurrent_inserts () =
  let dir = tmp_dir "merge" in
  let seen = Store.Tiered.create ~shard_cap:64 ~mem_budget:(64 * Store.Tiered.entry_bytes * Store.Tiered.n_shards) ~spill_dir:dir ~merge_fanout:3 () in
  let n_doms = 4 and per_dom = 4_000 in
  let key d i = ((i * 2654435761) lxor (d lsl 58)) lor 1 in
  let doms =
    Array.init n_doms (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_dom do
              (* two adds per key: depth 2i then i — the second must improve *)
              ignore (Store.Tiered.add seen (key d i) ~parent:1 ~event:d ~depth:(2 * i));
              match Store.Tiered.add seen (key d i) ~parent:1 ~event:d ~depth:i with
              | Store.Tiered.Improved _ | Store.Tiered.Stale -> ()
              | Store.Tiered.Fresh -> Alcotest.failf "duplicate fresh for key %d" (key d i)
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "distinct count" (n_doms * per_dom) (Store.Tiered.count seen);
  let st = Store.Tiered.stats seen in
  Alcotest.(check bool) "spills happened" true (st.Store.Tiered.spills > 0);
  Alcotest.(check bool) "merges happened" true (st.Store.Tiered.merges > 0);
  for d = 0 to n_doms - 1 do
    for i = 1 to per_dom do
      match Store.Tiered.depth_of seen (key d i) with
      | None -> Alcotest.failf "lost key %d after spill/merge" (key d i)
      | Some dep ->
        if dep <> i then Alcotest.failf "key %d depth %d, expected %d" (key d i) dep i
    done
  done;
  rm_rf dir

(* -- spill equivalence against the all-RAM checker ---------------------------- *)

(* Two interleaving counters with a violation: enough states to spill
   heavily under a tiny budget, a violation whose shortest trace the
   spilled run must still find.  The store keeps membership exact, so
   verdict, invariant, counterexample length and state count must all
   match the all-RAM run ([depth] deliberately unchecked: a spilled
   entry's stale deep copy may overstate it). *)
let two_counters () =
  let p : com =
    Com.While (("w" : Cimp.Label.t), (fun s -> s < 40), Com.Local_op ("step", fun s -> [ s + 1; s + 2 ]))
  in
  System.make [| "p"; "q" |] [| proc p 0; proc p 0 |]

let bad_sum sys = (System.proc sys 0).Com.data + (System.proc sys 1).Com.data <> 51

let signature (o : _ Check.Explore.outcome) =
  ( (match o.Check.Explore.violation with
    | None -> ("clean", 0)
    | Some tr -> (tr.Check.Trace.broken, Check.Trace.length tr)),
    o.Check.Explore.states,
    o.Check.Explore.transitions )

let test_forced_spill_equivalence () =
  let invariants = [ ("not-51", bad_sum) ] in
  let all_ram = Check.Explore.run ~normal_form:false ~invariants (two_counters ()) in
  let base, _, _ = signature all_ram in
  List.iter
    (fun jobs ->
      let dir = tmp_dir (Fmt.str "spill%d" jobs) in
      let o =
        Check.Par_explore.run ~jobs ~normal_form:false ~mem_budget:(48 * 1024)
          ~spill_dir:dir ~invariants (two_counters ())
      in
      (* on a violating instance the states-at-stop count is traversal-order
         dependent; the deterministic contract is invariant + shortest-CE
         length (exact counts are pinned on the clean instance below) *)
      let v, _, _ = signature o in
      Alcotest.(check (pair string int))
        (Fmt.str "spilled run matches all-RAM at jobs=%d" jobs)
        base v;
      rm_rf dir)
    [ 1; 4 ];
  (* same equivalence on a clean (violation-free) instance, where state
     counts are exactly comparable, plus proof that most states spilled *)
  let p : com =
    Com.While (("w" : Cimp.Label.t), (fun s -> s < 60), Com.Local_op ("step", fun s -> [ s + 1; s + 3 ]))
  in
  let sys () = System.make [| "p"; "q" |] [| proc p 0; proc p 0 |] in
  let seq = Check.Explore.run ~normal_form:false ~invariants:[] (sys ()) in
  let dir = tmp_dir "spill-clean" in
  let o =
    Check.Par_explore.run ~jobs:2 ~normal_form:false
      ~mem_budget:(Store.Tiered.n_shards * 20 * Store.Tiered.entry_bytes) ~spill_dir:dir
      ~invariants:[] (sys ())
  in
  Alcotest.(check int) "clean states" seq.Check.Explore.states o.Check.Explore.states;
  Alcotest.(check int) "clean transitions" seq.Check.Explore.transitions o.Check.Explore.transitions;
  Alcotest.(check int) "clean deadlocks" seq.Check.Explore.deadlocks o.Check.Explore.deadlocks;
  Alcotest.(check bool) "clean verdict" true (o.Check.Explore.violation = None);
  rm_rf dir

(* -- checkpoint / resume ------------------------------------------------------ *)

(* Checkpoint a run every few hundred states, load the snapshot back,
   resume, and pin the resumed outcome to the uninterrupted one.  The
   final snapshot is written post-quiescence, so loading it and resuming
   exercises the full store-restore path even without a kill. *)
let test_checkpoint_resume_equivalence () =
  let invariants = [ ("not-51", bad_sum) ] in
  let uninterrupted =
    Check.Par_explore.run ~jobs:2 ~normal_form:false ~invariants (two_counters ())
  in
  let dir = tmp_dir "ckpt" in
  let o =
    Check.Par_explore.run ~jobs:2 ~normal_form:false ~checkpoint:(dir, 300) ~invariants
      (two_counters ())
  in
  (let (v, _, _) = signature uninterrupted and (v', _, _) = signature o in
   Alcotest.(check (pair string int)) "checkpointed run unaffected" v v');
  (match Store.Checkpoint.manifest dir with
  | Error msg -> Alcotest.failf "manifest: %s" msg
  | Ok (seq, _) -> Alcotest.(check bool) "snapshots were written" true (seq >= 1));
  (match Store.Checkpoint.load dir with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok snap ->
    let r =
      Check.Par_explore.run ~jobs:2 ~normal_form:false ~resume:snap ~invariants (two_counters ())
    in
    let (v, _, _) = signature uninterrupted and (v', _, _) = signature r in
    Alcotest.(check (pair string int)) "resumed verdict + CE length" v v');
  rm_rf dir

(* A mid-run snapshot (not the final one): checkpoint with a tiny
   interval, grab the first snapshot as soon as the manifest appears by
   racing the run from another domain, then resume from that strictly
   partial snapshot and require the uninterrupted verdict.  This is the
   in-process analogue of the CI SIGKILL smoke. *)
let test_resume_from_mid_run_snapshot () =
  let uninterrupted =
    Check.Explore.run ~normal_form:false ~invariants:[] (two_counters ())
  in
  let dir = tmp_dir "midrun" in
  let snap_holder = ref None in
  let grabber =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 30. in
        let rec poll () =
          if Unix.gettimeofday () > deadline then ()
          else
            match Store.Checkpoint.manifest dir with
            | Ok (seq, _) when seq >= 1 -> (
              match Store.Checkpoint.load dir with
              | Ok snap when snap.Store.Checkpoint.states > 0 -> snap_holder := Some snap
              | _ -> poll ())
            | _ ->
              Unix.sleepf 0.002;
              poll ()
        in
        poll ())
  in
  let full =
    Check.Par_explore.run ~jobs:1 ~normal_form:false ~checkpoint:(dir, 200) ~invariants:[]
      (two_counters ())
  in
  Domain.join grabber;
  (match !snap_holder with
  | None -> Alcotest.fail "no snapshot captured while the run was live"
  | Some snap ->
    let r =
      Check.Par_explore.run ~jobs:2 ~normal_form:false ~resume:snap ~invariants:[]
        (two_counters ())
    in
    Alcotest.(check int)
      (Fmt.str "resume from snapshot %d (%d states) completes the space"
         snap.Store.Checkpoint.seq snap.Store.Checkpoint.states)
      uninterrupted.Check.Explore.states r.Check.Explore.states;
    Alcotest.(check int) "transitions" uninterrupted.Check.Explore.transitions
      r.Check.Explore.transitions;
    Alcotest.(check bool) "clean" true (r.Check.Explore.violation = None));
  Alcotest.(check int) "checkpointed run itself is right" uninterrupted.Check.Explore.states
    full.Check.Explore.states;
  rm_rf dir

(* Crash recovery: a half-written snapshot (tmp-snap debris, torn
   MANIFEST.tmp) must be invisible — load still returns the last
   complete snapshot, and the next checkpointed run garbage-collects the
   debris. *)
let test_crash_mid_checkpoint_recovery () =
  let dir = tmp_dir "crash" in
  let o =
    Check.Par_explore.run ~jobs:1 ~normal_form:false ~checkpoint:(dir, 500) ~invariants:[]
      (two_counters ())
  in
  (* simulate a crash mid-write: partial snapshot dir + torn manifest *)
  let tmp = Filename.concat dir "tmp-snap" in
  Unix.mkdir tmp 0o755;
  Out_channel.with_open_bin (Filename.concat tmp "state.json") (fun oc ->
      Out_channel.output_string oc "{\"schema\":1,\"truncat");
  Out_channel.with_open_bin (Filename.concat dir "MANIFEST.tmp") (fun oc ->
      Out_channel.output_string oc "{\"schema\":1,\"latest\":\"snap-99");
  (match Store.Checkpoint.load dir with
  | Error msg -> Alcotest.failf "load after simulated crash: %s" msg
  | Ok snap ->
    Alcotest.(check int) "last complete snapshot survives" o.Check.Explore.states
      snap.Store.Checkpoint.states;
    (* resume completes instantly (final snapshot: empty frontier) with
       the identical verdict *)
    let r =
      Check.Par_explore.run ~jobs:1 ~normal_form:false ~resume:snap ~invariants:[]
        (two_counters ())
    in
    Alcotest.(check int) "states preserved" o.Check.Explore.states r.Check.Explore.states);
  (* the next write sweeps the debris *)
  let dir2_run =
    Check.Par_explore.run ~jobs:1 ~normal_form:false ~checkpoint:(dir, 500) ~invariants:[]
      (two_counters ())
  in
  ignore dir2_run;
  Alcotest.(check bool) "tmp-snap swept" false (Sys.file_exists tmp);
  rm_rf dir

(* Resuming against the wrong model must be refused, not silently
   diverge. *)
let test_resume_model_mismatch_refused () =
  let dir = tmp_dir "mismatch" in
  ignore
    (Check.Par_explore.run ~jobs:1 ~normal_form:false ~checkpoint:(dir, 100) ~invariants:[]
       (two_counters ()));
  (match Store.Checkpoint.load dir with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok snap ->
    let other =
      let p : com = Com.Local_op ("p", fun s -> [ s + 1 ]) in
      System.make [| "solo" |] [| proc p 100 |]
    in
    Alcotest.check_raises "mismatched model refused"
      (Invalid_argument "Par_explore.run: checkpoint does not match this model configuration")
      (fun () ->
        ignore (Check.Par_explore.run ~jobs:1 ~normal_form:false ~resume:snap ~invariants:[] other)));
  rm_rf dir

let suite =
  [
    Alcotest.test_case "varint round-trip over the 63-bit range" `Quick test_varint_roundtrip;
    Alcotest.test_case "bloom: no false negatives, rare positives" `Quick
      test_bloom_no_false_negatives;
    Alcotest.test_case "segment write -> bloom -> lookup round-trip" `Quick test_segment_roundtrip;
    Alcotest.test_case "merge correctness under concurrent inserts" `Slow
      test_merge_under_concurrent_inserts;
    Alcotest.test_case "forced-spill equivalence vs all-RAM" `Slow test_forced_spill_equivalence;
    Alcotest.test_case "checkpoint -> load -> resume equivalence" `Slow
      test_checkpoint_resume_equivalence;
    Alcotest.test_case "resume from a mid-run snapshot" `Slow test_resume_from_mid_run_snapshot;
    Alcotest.test_case "crash mid-checkpoint leaves last snapshot loadable" `Quick
      test_crash_mid_checkpoint_recovery;
    Alcotest.test_case "resume against the wrong model is refused" `Quick
      test_resume_model_mismatch_refused;
  ]
