let () =
  Alcotest.run "relaxing_safely"
    [
      ("cimp", Test_cimp.suite);
      ("cimp-lang", Test_cimp_lang.suite);
      ("heap", Test_heap.suite);
      ("tso", Test_tso.suite);
      ("core", Test_core.suite);
      ("check", Test_check.suite);
      ("invariants", Test_invariants.suite);
      ("safety", Test_safety.suite);
      ("reduce", Test_reduce.suite);
      ("runtime", Test_runtime.suite);
      ("obs", Test_obs.suite);
      ("latency", Test_latency.suite);
      ("tracing", Test_tracing.suite);
      ("explain", Test_explain.suite);
      ("mutate", Test_mutate.suite);
      ("store", Test_store.suite);
      ("certify", Test_certify.suite);
    ]
