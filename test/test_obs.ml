(* Tests for the observability layer: the JSON codec, metrics (including
   atomic counters under real domains), reporter sinks and spec parsing,
   Trace JSON export round-trips, and the instrumentation wired into the
   checkers and the multicore harness. *)

open Cimp

type com = (int, int, int) Com.t

let proc c data = Com.make [ c ] data

(* -- Json -------------------------------------------------------------------- *)

let rec json_equal (a : Obs.Json.t) (b : Obs.Json.t) =
  match (a, b) with
  | Obs.Json.Null, Obs.Json.Null -> true
  | Obs.Json.Bool x, Obs.Json.Bool y -> x = y
  | Obs.Json.Int x, Obs.Json.Int y -> x = y
  | Obs.Json.Float x, Obs.Json.Float y -> abs_float (x -. y) < 1e-9
  | Obs.Json.Int x, Obs.Json.Float y | Obs.Json.Float y, Obs.Json.Int x ->
    abs_float (float_of_int x -. y) < 1e-9
  | Obs.Json.String x, Obs.Json.String y -> x = y
  | Obs.Json.List xs, Obs.Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2) xs ys
  | _ -> false

let json : Obs.Json.t Alcotest.testable =
  Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) json_equal

let parse_exn s =
  match Obs.Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("string", String "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9");
          ("list", List [ Int 1; String "two"; Obj [ ("three", Bool false) ] ]);
          ("empty_obj", Obj []);
          ("empty_list", List []);
        ])
  in
  Alcotest.check json "print/parse round-trip" v (parse_exn (Obs.Json.to_string v));
  Alcotest.check json "pretty-print/parse round-trip" v
    (parse_exn (Obs.Json.to_string_pretty v))

let test_json_parses_plain_forms () =
  Alcotest.check json "exponent" (Obs.Json.Float 1000.) (parse_exn "1e3");
  Alcotest.check json "negative float" (Obs.Json.Float (-2.5)) (parse_exn "-2.5");
  Alcotest.check json "escaped unicode" (Obs.Json.String "\xc2\xa9") (parse_exn {|"©"|});
  Alcotest.check json "whitespace tolerated"
    (Obs.Json.Obj [ ("a", Obs.Json.List [ Obs.Json.Int 1 ]) ])
    (parse_exn " { \"a\" : [ 1 ] } ")

let test_json_rejects_garbage () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "parser accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "1 2";
  bad "tru";
  bad "\"unterminated"

let test_json_nonfinite_floats () =
  (* non-finite floats must not produce unparseable output *)
  let s = Obs.Json.to_string (Obs.Json.List [ Obs.Json.Float nan; Obs.Json.Float infinity ]) in
  match Obs.Json.of_string s with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "nan/inf serialization unparseable (%s): %s" s msg

(* -- Metrics ----------------------------------------------------------------- *)

let test_counters_and_gauges () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "states" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 9;
  Alcotest.(check int) "plain counter" 10 (Obs.Metrics.count c);
  let g = Obs.Metrics.gauge ~registry:reg "depth" in
  Obs.Metrics.set g 3.5;
  Alcotest.(check (float 0.)) "gauge" 3.5 (Obs.Metrics.value g);
  match Obs.Metrics.dump ~registry:reg () with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "dump has both metrics" true
      (List.mem_assoc "states" fields && List.mem_assoc "depth" fields)
  | j -> Alcotest.failf "dump is not an object: %s" (Obs.Json.to_string j)

let test_histogram_exact_percentiles () =
  let h = Obs.Metrics.histogram ~registry:(Obs.Metrics.create_registry ()) "lat" in
  for i = 100 downto 1 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "observations" 100 (Obs.Metrics.observations h);
  Alcotest.(check (float 0.)) "p50" 50. (Obs.Metrics.percentile h 50.);
  Alcotest.(check (float 0.)) "p90" 90. (Obs.Metrics.percentile h 90.);
  Alcotest.(check (float 0.)) "p99" 99. (Obs.Metrics.percentile h 99.);
  Alcotest.(check (float 0.)) "p100" 100. (Obs.Metrics.percentile h 100.);
  Alcotest.(check (float 0.)) "min" 1. (Obs.Metrics.hmin h);
  Alcotest.(check (float 0.)) "max" 100. (Obs.Metrics.hmax h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Obs.Metrics.mean h)

let test_histogram_reservoir () =
  let h =
    Obs.Metrics.histogram ~registry:(Obs.Metrics.create_registry ()) ~capacity:64 "lat"
  in
  for i = 1 to 10_000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "observations count everything" 10_000 (Obs.Metrics.observations h);
  Alcotest.(check (float 0.)) "min survives sampling" 1. (Obs.Metrics.hmin h);
  Alcotest.(check (float 0.)) "max survives sampling" 10_000. (Obs.Metrics.hmax h);
  let p50 = Obs.Metrics.percentile h 50. in
  Alcotest.(check bool) "p50 inside the observed range" true (p50 >= 1. && p50 <= 10_000.);
  match Obs.Metrics.hsnapshot h with
  | Obs.Json.Obj fields ->
    Alcotest.check json "snapshot count" (Obs.Json.Int 10_000) (List.assoc "count" fields)
  | j -> Alcotest.failf "hsnapshot is not an object: %s" (Obs.Json.to_string j)

let test_empty_histogram_snapshot () =
  (* regression: an empty histogram's snapshot must be count=0 with
     explicit nulls, not NaN-valued stats relying on the JSON writer to
     degrade them *)
  let h = Obs.Metrics.histogram ~registry:(Obs.Metrics.create_registry ()) "empty" in
  match Obs.Metrics.hsnapshot h with
  | Obs.Json.Obj fields ->
    Alcotest.check json "count is zero" (Obs.Json.Int 0) (List.assoc "count" fields);
    List.iter
      (fun k -> Alcotest.check json (k ^ " is null") Obs.Json.Null (List.assoc k fields))
      [ "mean"; "p50"; "p90"; "p99"; "min"; "max" ]
  | j -> Alcotest.failf "hsnapshot is not an object: %s" (Obs.Json.to_string j)

let test_atomic_counter_under_domains () =
  let c = Obs.Metrics.acounter ~registry:(Obs.Metrics.create_registry ()) "cas" in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Obs.Metrics.aincr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "4 domains x 10k increments" (4 * per_domain) (Obs.Metrics.acount c)

(* -- Reporter ---------------------------------------------------------------- *)

let test_reporter_memory_sink () =
  Alcotest.(check bool) "null is disabled" false (Obs.Reporter.enabled Obs.Reporter.null);
  let obs, dump = Obs.Reporter.memory () in
  Alcotest.(check bool) "memory is enabled" true (Obs.Reporter.enabled obs);
  Obs.Reporter.emit obs "ping" [ ("n", Obs.Json.Int 1) ];
  let x = Obs.Reporter.span obs "work" (fun () -> 7) in
  Alcotest.(check int) "span passes the result through" 7 x;
  (match dump () with
  | [ Obs.Json.Obj ping; Obs.Json.Obj span ] ->
    Alcotest.check json "event name" (Obs.Json.String "ping") (List.assoc "event" ping);
    Alcotest.(check bool) "base fields present" true
      (List.mem_assoc "ts" ping && List.mem_assoc "rel_s" ping);
    Alcotest.check json "span record" (Obs.Json.String "span") (List.assoc "event" span);
    Alcotest.check json "span name" (Obs.Json.String "work") (List.assoc "name" span)
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records));
  Obs.Reporter.close obs;
  Alcotest.(check bool) "closed reporter is disabled" false (Obs.Reporter.enabled obs);
  Obs.Reporter.emit obs "late" [];
  Alcotest.(check int) "emits after close are dropped" 2 (List.length (dump ()))

let test_reporter_spec_parsing () =
  (match Obs.Reporter.of_spec "off" with
  | Ok t -> Alcotest.(check bool) "off is disabled" false (Obs.Reporter.enabled t)
  | Error msg -> Alcotest.fail msg);
  (match Obs.Reporter.of_spec "nonsense" with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error _ -> ());
  let path = Filename.temp_file "obs_spec" ".jsonl" in
  (match Obs.Reporter.of_spec ("json:" ^ path) with
  | Ok t ->
    Obs.Reporter.emit t "hello" [];
    Obs.Reporter.close t;
    let ic = open_in path in
    let line = input_line ic in
    close_in ic;
    ignore (parse_exn line)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* -- Trace JSON export ------------------------------------------------------- *)

let test_event_json_roundtrip () =
  let check_event ev =
    match Check.Trace.event_of_json (Check.Trace.event_to_json ev) with
    | Ok ev' -> Alcotest.(check bool) "event survives the round-trip" true (ev = ev')
    | Error msg -> Alcotest.fail msg
  in
  check_event (System.Tau (0, "mark"));
  check_event
    (System.Rendezvous
       { requester = 1; req_label = "req-read"; responder = 0; resp_label = "serve-read" })

let test_trace_json_roundtrip () =
  (* a deterministic 3-step violation gives a non-trivial schedule *)
  let p : com =
    Com.seq
      [
        Com.Local_op ("a", fun s -> [ s + 1 ]);
        Com.Local_op ("b", fun s -> [ s * 2 ]);
        Com.Local_op ("c", fun s -> [ s + 5 ]);
      ]
  in
  let sys = System.make [| "p" |] [| proc p 3 |] in
  let o =
    Check.Explore.run ~normal_form:false
      ~invariants:[ ("never-13", fun sys -> (System.proc sys 0).Com.data <> 13) ]
      sys
  in
  match o.Check.Explore.violation with
  | None -> Alcotest.fail "13 = (3+1)*2+5 must be reached"
  | Some tr -> (
    let reparsed = parse_exn (Obs.Json.to_string (Check.Trace.to_json tr)) in
    match Check.Trace.schedule_of_json reparsed with
    | Error msg -> Alcotest.fail msg
    | Ok (broken, schedule) ->
      Alcotest.(check string) "broken invariant survives" "never-13" broken;
      let original = List.map (fun (s : _ Check.Trace.step) -> s.Check.Trace.event) tr.Check.Trace.steps in
      Alcotest.(check bool) "schedule survives" true (schedule = original))

(* -- Checker instrumentation ------------------------------------------------- *)

let record_fields name = function
  | Obs.Json.Obj fields -> fields
  | j -> Alcotest.failf "%s record is not an object: %s" name (Obs.Json.to_string j)

let records_of_event name records =
  List.filter_map
    (fun r ->
      let fields = record_fields name r in
      match List.assoc_opt "event" fields with
      | Some (Obs.Json.String e) when e = name -> Some fields
      | _ -> None)
    records

let int_field fields k =
  match List.assoc_opt k fields with
  | Some (Obs.Json.Int n) -> n
  | Some j -> Alcotest.failf "field %s is not an int: %s" k (Obs.Json.to_string j)
  | None -> Alcotest.failf "field %s missing" k

let test_explore_per_invariant_evals () =
  (* ISSUE acceptance: on the baseline scenario, every invariant must be
     evaluated at every visited state — eval counts == states *)
  let obs, dump = Obs.Reporter.memory () in
  let o = Core.Scenario.explore ~obs Core.Scenario.baseline in
  Obs.Reporter.close obs;
  let records = dump () in
  let n_invariants = List.length (Core.Scenario.invariants Core.Scenario.baseline) in
  let inv_records = records_of_event "invariant" records in
  Alcotest.(check int) "one record per invariant" n_invariants (List.length inv_records);
  List.iter
    (fun fields ->
      Alcotest.(check int)
        (Fmt.str "invariant %s evaluated at every state"
           (match List.assoc_opt "name" fields with
           | Some (Obs.Json.String n) -> n
           | _ -> "?"))
        o.Check.Explore.states (int_field fields "evals"))
    inv_records;
  let outcomes = records_of_event "outcome" records in
  Alcotest.(check int) "exactly one outcome record" 1 (List.length outcomes);
  Alcotest.(check int) "outcome states agrees with the result" o.Check.Explore.states
    (int_field (List.hd outcomes) "states")

let test_explore_jsonl_stream () =
  let path = Filename.temp_file "obs_explore" ".jsonl" in
  let p : com = Com.Loop (Com.Local_op ("inc", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let obs = Obs.Reporter.jsonl path in
  let o =
    Check.Explore.run ~max_states:500 ~heartbeat_every:100 ~obs
      ~invariants:[ ("true", fun _ -> true) ]
      sys
  in
  Obs.Reporter.close obs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let records = List.rev_map parse_exn !lines in
  Sys.remove path;
  Alcotest.(check bool) "heartbeats streamed" true
    (List.length (records_of_event "heartbeat" records) >= 1);
  Alcotest.(check int) "one invariant record" 1
    (List.length (records_of_event "invariant" records));
  let outcome = List.hd (records_of_event "outcome" records) in
  Alcotest.(check int) "states in the stream" o.Check.Explore.states (int_field outcome "states")

let test_coverage_sorted_and_gaps () =
  let p : com =
    Com.If
      ( "branch",
        (fun s -> s = 0),
        Com.assign "then" (fun s -> s + 1),
        Com.assign "else" (fun s -> s - 1) )
  in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o = Check.Explore.run ~normal_form:false ~track_coverage:true ~invariants:[] sys in
  Alcotest.(check (list (pair int string)))
    "covered is sorted and complete"
    [ (0, "branch"); (0, "then") ]
    o.Check.Explore.covered;
  Alcotest.(check (list (pair int string)))
    "the dead branch is the one gap"
    [ (0, "else") ]
    (Check.Explore.coverage_gaps sys ~covered:o.Check.Explore.covered)

let test_random_walk_trace_tail () =
  (* single deterministic path to a violation at depth 500; only the last
     [trace_tail] steps must be retained *)
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Random_walk.run ~normal_form:false ~steps:10_000 ~trace_tail:10
      ~invariants:[ ("below-500", fun sys -> (System.proc sys 0).Com.data < 500) ]
      sys
  in
  match o.Check.Random_walk.violation with
  | None -> Alcotest.fail "the walk must reach 500"
  | Some tr ->
    Alcotest.(check int) "trace bounded to the tail" 10 (Check.Trace.length tr);
    Alcotest.(check int) "final state is the offender" 500
      (System.proc (Check.Trace.final tr) 0).Com.data;
    Alcotest.(check int) "no dead ends on an infinite path" 0 o.Check.Random_walk.restarts

let test_random_walk_counts_restarts () =
  (* a terminating program dead-ends every walk, forcing restarts *)
  let p : com =
    Com.seq
      [
        Com.assign "a" (fun s -> s + 1);
        Com.assign "b" (fun s -> s + 1);
        Com.assign "c" (fun s -> s + 1);
      ]
  in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o = Check.Random_walk.run ~normal_form:false ~steps:50 ~invariants:[] sys in
  Alcotest.(check bool) "dead ends recorded" true (o.Check.Random_walk.restarts > 0);
  Alcotest.(check bool) "every restart is also a run" true
    (o.Check.Random_walk.runs > o.Check.Random_walk.restarts)

(* -- Runtime instrumentation ------------------------------------------------- *)

let test_harness_emits_records () =
  let obs, dump = Obs.Reporter.memory () in
  let stats = Runtime.Harness.run ~n_muts:2 ~duration:0.3 ~obs () in
  Obs.Reporter.close obs;
  let records = dump () in
  let harness = records_of_event "harness" records in
  Alcotest.(check int) "one harness record" 1 (List.length harness);
  let fields = List.hd harness in
  Alcotest.(check int) "cycle count agrees" stats.Runtime.Harness.cycles
    (int_field fields "cycles");
  Alcotest.(check int) "handshake rounds agree" stats.Runtime.Harness.hs_rounds
    (int_field fields "hs_rounds");
  let cycles = records_of_event "gc-cycle" records in
  Alcotest.(check int) "one record per completed cycle" stats.Runtime.Harness.cycles
    (List.length cycles);
  List.iter
    (fun fields ->
      match List.assoc_opt "hs_latency_s" fields with
      | Some (Obs.Json.List ls) ->
        Alcotest.(check bool) "each cycle logs its handshake latencies" true
          (List.length ls > 0)
      | _ -> Alcotest.fail "gc-cycle record lacks hs_latency_s")
    cycles

let suite =
  [
    Alcotest.test_case "json: print/parse round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: plain forms parse" `Quick test_json_parses_plain_forms;
    Alcotest.test_case "json: garbage rejected" `Quick test_json_rejects_garbage;
    Alcotest.test_case "json: non-finite floats stay parseable" `Quick test_json_nonfinite_floats;
    Alcotest.test_case "metrics: counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "metrics: exact percentiles under capacity" `Quick
      test_histogram_exact_percentiles;
    Alcotest.test_case "metrics: reservoir over capacity" `Quick test_histogram_reservoir;
    Alcotest.test_case "metrics: empty histogram snapshot is nulls" `Quick
      test_empty_histogram_snapshot;
    Alcotest.test_case "metrics: atomic counter under 4 domains" `Quick
      test_atomic_counter_under_domains;
    Alcotest.test_case "reporter: memory sink and lifecycle" `Quick test_reporter_memory_sink;
    Alcotest.test_case "reporter: spec parsing" `Quick test_reporter_spec_parsing;
    Alcotest.test_case "trace: event JSON round-trip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "trace: schedule JSON round-trip" `Quick test_trace_json_roundtrip;
    Alcotest.test_case "explore: per-invariant evals == states (baseline)" `Quick
      test_explore_per_invariant_evals;
    Alcotest.test_case "explore: JSONL stream is well-formed" `Quick test_explore_jsonl_stream;
    Alcotest.test_case "explore: coverage sorted, gaps found" `Quick
      test_coverage_sorted_and_gaps;
    Alcotest.test_case "walk: counterexample memory bounded by trace_tail" `Quick
      test_random_walk_trace_tail;
    Alcotest.test_case "walk: dead-end restarts counted" `Quick test_random_walk_counts_restarts;
    Alcotest.test_case "harness: gc-cycle and harness records" `Quick test_harness_emits_records;
  ]
