(* Tests for the state-space reduction subsystem (lib/reduce and its
   Core.Reduction instantiation): symmetry canonicalization, the POR
   independence argument on concrete reachable states, differential
   reduced-vs-unreduced verdicts over the closing scenarios, and the
   cross-check harness itself. *)

let witness name = Core.Scenario.witness_for (Option.get (Core.Variants.by_name name))

(* Collect up to [limit] distinct reachable normal-form states by BFS —
   raw material for the property tests below. *)
let collect ?(limit = 4_000) sc =
  let sys0 = Cimp.System.normalize (Core.Scenario.model sc).Core.Model.system in
  let seen = Check.Fingerprint.Table.create 1024 in
  let q = Queue.create () in
  let out = ref [] in
  let visit s =
    let fp = Check.Fingerprint.of_system s in
    if not (Check.Fingerprint.Table.mem seen fp) then begin
      Check.Fingerprint.Table.add seen fp ();
      Queue.add s q;
      out := s :: !out
    end
  in
  visit sys0;
  while (not (Queue.is_empty q)) && Check.Fingerprint.Table.length seen < limit do
    let s = Queue.pop q in
    List.iter (fun (_e, s') -> visit (Cimp.System.normalize s')) (Cimp.System.steps s)
  done;
  List.rev !out

(* -- Mode parsing --------------------------------------------------------- *)

let test_mode_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("roundtrip " ^ Reduce.Mode.to_string m)
        true
        (Reduce.Mode.of_string (Reduce.Mode.to_string m) = Ok m))
    Reduce.Mode.all_modes;
  match Reduce.Mode.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_string accepted \"bogus\""

let test_permutations () =
  let ps = Reduce.Symmetry.permutations [ 0; 1; 2 ] in
  Alcotest.(check int) "3! permutations" 6 (List.length ps);
  Alcotest.(check int) "all distinct" 6 (List.length (List.sort_uniq compare ps));
  List.iter
    (fun p -> Alcotest.(check (list int)) "is a permutation" [ 0; 1; 2 ] (List.sort compare p))
    ps

(* -- Symmetry: canonical fingerprint is a permutation invariant ------------ *)

(* For every reachable state outside the handshake signal window and every
   permutation pi of the mutator indices, the canonical fingerprint of the
   state and of its concrete pi-image coincide — this is exactly what makes
   dedup-by-canonical-fingerprint collapse the orbit. *)
let sym_invariance n_muts () =
  let sc =
    Core.Scenario.make ~label:"sym-prop" ~n_muts ~n_refs:2 ~shape:"single" ~max_mut_ops:1 ()
  in
  let cfg = sc.Core.Scenario.cfg in
  let spec = Core.Reduction.spec cfg in
  let canon_fp s =
    let fp, _, _ = Reduce.Symmetry.canonical_fingerprint spec s in
    fp
  in
  let perms = Reduce.Symmetry.permutations (List.init n_muts Fun.id) in
  let states = collect ~limit:4_000 sc in
  let tested = ref 0 and buffered = ref 0 and permuted = ref 0 in
  List.iter
    (fun s ->
      if spec.Reduce.Symmetry.permute_ok s then begin
        incr tested;
        let sd = Core.State.sys (Cimp.System.proc s (Core.Config.pid_sys cfg)).Cimp.Com.data in
        let bufs =
          List.init n_muts (fun m -> Core.State.buf_of sd (Core.Config.pid_mut cfg m))
        in
        (* distinct non-empty store buffers are the delicate case: the
           per-pid Sys slices must travel with the permutation *)
        if List.exists (fun b -> b <> []) bufs && List.length (List.sort_uniq compare bufs) > 1
        then incr buffered;
        let fp = canon_fp s in
        (let _, moved, _ = Reduce.Symmetry.canonical_fingerprint spec s in
         if moved then incr permuted);
        List.iter
          (fun p ->
            let s' = Core.Reduction.permute_muts cfg s (fun m -> List.nth p m) in
            if not (Check.Fingerprint.equal fp (canon_fp s')) then
              Alcotest.fail
                (Fmt.str "canonical fingerprint not invariant under %a"
                   Fmt.(brackets (list ~sep:semi int))
                   p))
          perms
      end)
    states;
  Alcotest.(check bool) "sampled permutable states" true (!tested > 100);
  Alcotest.(check bool) "covered distinct non-empty buffers" true (!buffered > 0);
  Alcotest.(check bool) "the sort actually moves processes" true (!permuted > 0)

let test_sym_invariance_2 () = sym_invariance 2 ()
let test_sym_invariance_3 () = sym_invariance 3 ()

(* -- POR: deferrable transitions commute on reachable states --------------- *)

(* Wherever [ample] defers, the selected fence must commute (execution
   oracle, both orders, normalized) with every other enabled transition —
   the C1 base case, validated concretely rather than assumed. *)
let test_por_commutation () =
  let sc = Core.Scenario.two_mutators in
  let states = collect ~limit:4_000 sc in
  let checked = ref 0 in
  List.iter
    (fun s ->
      let succs = Cimp.System.steps s in
      let ample, deferred = Reduce.Por.ample Core.Reduction.por_policy succs in
      if deferred > 0 then begin
        incr checked;
        if ample = [] || List.length ample >= List.length succs then
          Alcotest.fail "deferred > 0 but the ample set is not a strict non-empty subset";
        (* the persistent set is the union of deferrable singletons: every
           member must be policy-deferrable and commute with every other
           enabled transition — other ample members included (pairwise
           independence is part of C1 for a multi-owner set) *)
        List.iter
          (fun (f, _) ->
            Alcotest.(check bool) "policy marks every ample event deferrable" true
              (Core.Reduction.por_policy.Reduce.Por.deferrable f);
            List.iter
              (fun (e, _) ->
                if e <> f then
                  Alcotest.(check bool) "fence commutes with concurrent transition" true
                    (Reduce.Independence.commute_at s f e))
              succs)
          ample
      end)
    states;
  Alcotest.(check bool) "found deferral points in the sample" true (!checked > 10)

let test_disjoint_footprints () =
  (* footprint disjointness on events straight out of the model *)
  let sc = Core.Scenario.two_mutators in
  let s = Cimp.System.normalize (Core.Scenario.model sc).Core.Model.system in
  let events = List.map fst (Cimp.System.steps s) in
  List.iter
    (fun e1 ->
      List.iter
        (fun e2 ->
          let expect =
            not
              (List.exists
                 (fun p -> List.mem p (Cimp.System.event_pids e2))
                 (Cimp.System.event_pids e1))
          in
          Alcotest.(check bool) "disjoint agrees with event_pids" expect
            (Reduce.Independence.disjoint e1 e2))
        events)
    events

(* -- Differential: reduced and unreduced agree on every closing scenario --- *)

let differential_modes = [ Reduce.Mode.Sym; Reduce.Mode.Por; Reduce.Mode.All ]

let differential ?safety_only ?(max_states = 5_000_000) name sc =
  let full = Core.Scenario.explore ~max_states ?safety_only sc in
  Alcotest.(check bool) (name ^ ": full run closes") false full.Check.Explore.truncated;
  let verdict o = Option.map (fun tr -> tr.Check.Trace.broken) o.Check.Explore.violation in
  let ce_length o =
    Option.map (fun tr -> List.length tr.Check.Trace.steps) o.Check.Explore.violation
  in
  List.iter
    (fun m ->
      let red = Core.Scenario.explore ~max_states ?safety_only ~reduce:m sc in
      let tag = name ^ "/" ^ Reduce.Mode.to_string m in
      Alcotest.(check bool) (tag ^ ": closes") false red.Check.Explore.truncated;
      Alcotest.(check bool) (tag ^ ": visits no more states") true
        (red.Check.Explore.states <= full.Check.Explore.states);
      Alcotest.(check (option string)) (tag ^ ": same verdict") (verdict full) (verdict red);
      Alcotest.(check (option int))
        (tag ^ ": same counterexample length")
        (ce_length full) (ce_length red))
    differential_modes

let test_diff_baseline () = differential "baseline" Core.Scenario.baseline
let test_diff_two_cycles () = differential "two-cycles" Core.Scenario.two_cycles
let test_diff_two_mutators () = differential "two-mutators" Core.Scenario.two_mutators
let test_diff_fig1 () = differential "fig1" Core.Scenario.fig1
let test_diff_chain () = differential "chain3" Core.Scenario.chain
let test_diff_deep_buffers () = differential "deep-buffers" Core.Scenario.deep_buffers

let test_diff_witnesses () =
  (* violating instances: the reduced run must find the same broken
     invariant by an equally short counterexample *)
  List.iter
    (fun name -> differential ~safety_only:true name (witness name))
    [ "no-deletion-barrier"; "no-insertion-barrier"; "no-barriers"; "alloc-white" ]

(* -- The cross-check harness ----------------------------------------------- *)

let test_crosscheck_two_mutators () =
  let r = Core.Scenario.crosscheck Core.Scenario.two_mutators in
  Alcotest.(check (list string)) "no mismatches" [] (Reduce.Crosscheck.errors r);
  (* the headline acceptance number: >= 50% of distinct states saved *)
  Alcotest.(check bool) "saves at least half the states" true
    (2 * r.Reduce.Crosscheck.reduced_states <= r.Reduce.Crosscheck.full_states)

let test_crosscheck_violation () =
  let r = Core.Scenario.crosscheck ~safety_only:true (witness "no-deletion-barrier") in
  Alcotest.(check (list string)) "no mismatches" [] (Reduce.Crosscheck.errors r);
  Alcotest.(check bool) "found the violation" true (r.Reduce.Crosscheck.full_violation <> None)

let test_crosscheck_flags_mismatches () =
  (* the harness itself: fabricated disagreements must be reported *)
  let ok =
    {
      Reduce.Crosscheck.reduce = "all";
      full_states = 100;
      reduced_states = 40;
      full_transitions = 300;
      reduced_transitions = 100;
      full_truncated = false;
      reduced_truncated = false;
      full_violation = Some "inv";
      reduced_violation = Some "inv";
      full_ce_length = Some 7;
      reduced_ce_length = Some 7;
      elapsed = 0.;
    }
  in
  Alcotest.(check (list string)) "clean result passes" [] (Reduce.Crosscheck.errors ok);
  let count r = List.length (Reduce.Crosscheck.errors r) in
  Alcotest.(check bool) "verdict mismatch flagged" true
    (count { ok with Reduce.Crosscheck.reduced_violation = None } > 0);
  Alcotest.(check bool) "different invariant flagged" true
    (count { ok with Reduce.Crosscheck.reduced_violation = Some "other" } > 0);
  Alcotest.(check bool) "state blow-up flagged" true
    (count { ok with Reduce.Crosscheck.reduced_states = 101 } > 0);
  Alcotest.(check bool) "longer counterexample flagged" true
    (count { ok with Reduce.Crosscheck.reduced_ce_length = Some 9 } > 0);
  Alcotest.(check bool) "longer counterexample tolerated when relaxed" true
    (Reduce.Crosscheck.errors ~allow_longer_ce:true
       { ok with Reduce.Crosscheck.reduced_ce_length = Some 9 }
    = []);
  Alcotest.(check bool) "shorter counterexample never tolerated" true
    (count { ok with Reduce.Crosscheck.reduced_ce_length = Some 5 } > 0);
  Alcotest.(check bool) "vacuous (truncated full) run flagged" true
    (count { ok with Reduce.Crosscheck.full_truncated = true } > 0);
  Alcotest.(check bool) "truncated reduced run flagged" true
    (count { ok with Reduce.Crosscheck.reduced_truncated = true } > 0)

let test_reducer_counters () =
  (* the observability counters move when the reducers do *)
  let sc =
    Core.Scenario.make ~label:"tiny2" ~n_muts:2 ~n_refs:2 ~shape:"single"
      ~tweak:(fun c ->
        { c with Core.Config.mut_load = false; mut_store = false; mut_alloc = false; mut_discard = false })
      ()
  in
  let reducer = Option.get (Core.Reduction.reducer sc.Core.Scenario.cfg Reduce.Mode.All) in
  let o =
    Check.Explore.run ~max_states:1_000_000 ~reducer
      ~invariants:(Core.Scenario.invariants sc)
      (Core.Scenario.model sc).Core.Model.system
  in
  Alcotest.(check bool) "clean" true (o.Check.Explore.violation = None);
  Alcotest.(check bool) "closed" false o.Check.Explore.truncated;
  Alcotest.(check bool) "permutations happened" true
    (Atomic.get reducer.Check.Reducer.sym_permuted > 0);
  Alcotest.(check bool) "registers were nulled" true
    (Atomic.get reducer.Check.Reducer.reg_nulled > 0);
  Alcotest.(check bool) "transitions were deferred" true
    (Atomic.get reducer.Check.Reducer.deferred > 0)

let test_sequential_parallel_agree () =
  (* same reducer semantics on both paths: verdicts and closure agree
     (exact state counts may differ — orbit representatives are chosen
     by arrival order, and canonicalization pauses in the handshake
     signal window) *)
  let sc = Core.Scenario.two_mutators in
  let seq = Core.Scenario.explore ~reduce:Reduce.Mode.All sc in
  let par = Core.Scenario.explore ~jobs:2 ~reduce:Reduce.Mode.All sc in
  Alcotest.(check bool) "seq closes" false seq.Check.Explore.truncated;
  Alcotest.(check bool) "par closes" false par.Check.Explore.truncated;
  Alcotest.(check bool) "same verdict" true
    (Option.map (fun tr -> tr.Check.Trace.broken) seq.Check.Explore.violation
    = Option.map (fun tr -> tr.Check.Trace.broken) par.Check.Explore.violation)

(* -- The headline reach extension ------------------------------------------ *)

let test_three_mutators_closes () =
  (* beyond the seed checker at the default cap (measured: >10M states,
     truncated); closes reduced in ~1.2M *)
  let o = Core.Scenario.explore ~max_states:2_000_000 ~reduce:Reduce.Mode.All
      Core.Scenario.three_mutators
  in
  Alcotest.(check bool) "closes" false o.Check.Explore.truncated;
  Alcotest.(check bool) "clean" true (o.Check.Explore.violation = None)

let suite =
  [
    Alcotest.test_case "mode: parse/print roundtrip" `Quick test_mode_roundtrip;
    Alcotest.test_case "permutations: 3! distinct" `Quick test_permutations;
    Alcotest.test_case "sym: canonical fp invariant (2 mutators)" `Quick test_sym_invariance_2;
    Alcotest.test_case "sym: canonical fp invariant (3 mutators)" `Quick test_sym_invariance_3;
    Alcotest.test_case "por: deferred fences commute (oracle)" `Quick test_por_commutation;
    Alcotest.test_case "por: disjointness matches footprints" `Quick test_disjoint_footprints;
    Alcotest.test_case "differential: baseline" `Slow test_diff_baseline;
    Alcotest.test_case "differential: two cycles" `Slow test_diff_two_cycles;
    Alcotest.test_case "differential: two mutators" `Slow test_diff_two_mutators;
    Alcotest.test_case "differential: fig1" `Slow test_diff_fig1;
    Alcotest.test_case "differential: chain" `Quick test_diff_chain;
    Alcotest.test_case "differential: deep buffers" `Slow test_diff_deep_buffers;
    Alcotest.test_case "differential: ablation witnesses" `Quick test_diff_witnesses;
    Alcotest.test_case "crosscheck: two mutators, >= 50% saved" `Slow test_crosscheck_two_mutators;
    Alcotest.test_case "crosscheck: violating instance" `Quick test_crosscheck_violation;
    Alcotest.test_case "crosscheck: harness flags mismatches" `Quick test_crosscheck_flags_mismatches;
    Alcotest.test_case "reducer: counters move" `Quick test_reducer_counters;
    Alcotest.test_case "reducer: sequential and parallel agree" `Slow test_sequential_parallel_agree;
    Alcotest.test_case "reach: three mutators close under reduction" `Slow test_three_mutators_closes;
  ]
