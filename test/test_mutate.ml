(* The mutation-testing campaign: catalogue stability, the known-answer
   ablation kills, record schema, kill-matrix rendering, budget-exhausted
   survivors, and the generated manuals staying in sync with their
   generators. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The campaign's enumeration configuration: every site present, two
   cycles so the hs1 store fence is armed. *)
let fat_cfg =
  { Core.Config.default with Core.Config.max_cycles = 2; max_mut_ops = 3; buf_bound = 2 }

(* -- catalogue stability ------------------------------------------------------ *)

let count_family cfg fam = List.length (Mutate.Operators.of_family cfg fam)

let test_catalogue_counts () =
  Alcotest.(check int) "drop-fence sites" 14 (count_family fat_cfg "drop-fence");
  Alcotest.(check int) "weaken-cas sites" 4 (count_family fat_cfg "weaken-cas");
  Alcotest.(check int) "elide-barrier sites" 2 (count_family fat_cfg "elide-barrier");
  Alcotest.(check int) "skip-hs-wait sites" 6 (count_family fat_cfg "skip-hs-wait");
  Alcotest.(check int) "swap-mark-loads sites" 4 (count_family fat_cfg "swap-mark-loads");
  Alcotest.(check int) "alloc-color-off sites" 1 (count_family fat_cfg "alloc-color-off");
  Alcotest.(check int) "whole catalogue" 31 (List.length (Mutate.Operators.all fat_cfg));
  (* sites follow the configuration: no store op, no barrier expansions *)
  let no_store = { fat_cfg with Core.Config.mut_store = false } in
  Alcotest.(check int) "no store: no barrier marks" 2 (count_family no_store "weaken-cas");
  Alcotest.(check int) "no store: no barriers to elide" 0 (count_family no_store "elide-barrier");
  (* O1 removes the two middle handshakes *)
  let o1 = { fat_cfg with Core.Config.skip_init_handshakes = true } in
  Alcotest.(check int) "O1: four rounds to rush" 4 (count_family o1 "skip-hs-wait");
  Alcotest.(check int) "O1: four fence pairs + mutator pair" 10 (count_family o1 "drop-fence")

(* The static buffer-emptiness analysis: the armed drop-fence sites are
   exactly the four store fences in front of the initialization
   handshakes — the paper's Section 2.4 MFENCEs. *)
let test_armed_fences_are_the_section_24_mfences () =
  let armed =
    List.filter
      (fun (m : Mutate.Operators.t) -> not m.Mutate.Operators.expected_equivalent)
      (Mutate.Operators.of_family fat_cfg "drop-fence")
  in
  Alcotest.(check (list string))
    "armed fence sites"
    [
      "drop-fence:gc:hs1:store-fence"; "drop-fence:gc:hs2:store-fence";
      "drop-fence:gc:hs3:store-fence"; "drop-fence:gc:hs4:store-fence";
    ]
    (List.map (fun (m : Mutate.Operators.t) -> m.Mutate.Operators.name) armed);
  (* with a single bounded cycle the hs1 store fence has nothing to flush *)
  let single = { fat_cfg with Core.Config.max_cycles = 1 } in
  match Mutate.Operators.by_name single "drop-fence:gc:hs1:store-fence" with
  | None -> Alcotest.fail "hs1 store fence missing from the single-cycle catalogue"
  | Some m ->
    Alcotest.(check bool) "hs1 store fence equivalent at one cycle" true
      m.Mutate.Operators.expected_equivalent

let test_mutant_tweak_composes () =
  let m = Option.get (Mutate.Operators.by_name fat_cfg "elide-barrier:del") in
  let cfg = Mutate.Operators.tweak m fat_cfg in
  Alcotest.(check bool) "mutation armed" true
    (Core.Config.barrier_elided cfg "del");
  (* the cfg-level flag (and with it the invariant guards) stays on: the
     elision is a program-text mutation, not an ablation *)
  Alcotest.(check bool) "deletion_barrier flag untouched" true cfg.Core.Config.deletion_barrier

(* -- the known-answer campaign: every ablation dies --------------------------- *)

let ablation_campaign =
  lazy
    (let mutants = List.map Mutate.Campaign.of_variant Core.Variants.ablations in
     Mutate.Campaign.run ~budget:400_000 ~mutants ())

let test_ablations_all_killed () =
  let o = Lazy.force ablation_campaign in
  List.iter
    (fun (e : Mutate.Campaign.entry) ->
      match e.Mutate.Campaign.classification with
      | Mutate.Campaign.Killed _ -> ()
      | Mutate.Campaign.Survived _ ->
        Alcotest.fail (e.Mutate.Campaign.mutant.Mutate.Campaign.name ^ " survived")
      | Mutate.Campaign.Errored msg ->
        Alcotest.fail (e.Mutate.Campaign.mutant.Mutate.Campaign.name ^ " errored: " ^ msg))
    o.Mutate.Campaign.entries;
  let s = Mutate.Kill_matrix.stats o in
  Alcotest.(check int) "five ablations" 5 s.Mutate.Kill_matrix.ablations_total;
  Alcotest.(check int) "all killed" 5 s.Mutate.Kill_matrix.ablations_killed

(* Each kill names a conjunct the violated invariant actually declares:
   the kill-matrix columns stay a closed vocabulary. *)
let test_kill_conjuncts_declared () =
  let o = Lazy.force ablation_campaign in
  List.iter
    (fun (e : Mutate.Campaign.entry) ->
      match e.Mutate.Campaign.classification with
      | Mutate.Campaign.Killed k -> (
        match
          List.find_opt
            (fun (i : Core.Invariants.t) -> i.Core.Invariants.name = k.Mutate.Campaign.invariant)
            o.Mutate.Campaign.invariants
        with
        | None -> Alcotest.fail ("kill names unknown invariant " ^ k.Mutate.Campaign.invariant)
        | Some inv ->
          Alcotest.(check bool)
            (k.Mutate.Campaign.invariant ^ " declares conjunct " ^ k.Mutate.Campaign.conjunct)
            true
            (List.mem_assoc k.Mutate.Campaign.conjunct inv.Core.Invariants.conjuncts))
      | _ -> ())
    o.Mutate.Campaign.entries

(* Every invariant carries the manual metadata the generator renders. *)
let test_invariant_metadata_complete () =
  let invs = Core.Invariants.all Core.Config.default in
  Alcotest.(check int) "catalogue size" 18 (List.length invs);
  List.iter
    (fun (i : Core.Invariants.t) ->
      Alcotest.(check bool) (i.Core.Invariants.name ^ " has a paper locus") true
        (i.Core.Invariants.paper <> "");
      Alcotest.(check bool) (i.Core.Invariants.name ^ " declares conjuncts") true
        (i.Core.Invariants.conjuncts <> []))
    invs

(* -- record schema ------------------------------------------------------------ *)

let test_campaign_record_schema () =
  let obs, recorded = Obs.Reporter.memory () in
  let mutants = [ Mutate.Campaign.of_variant (List.nth Core.Variants.ablations 3) ] in
  let _o = Mutate.Campaign.run ~obs ~budget:400_000 ~mutants () in
  Obs.Reporter.close obs;
  let records =
    List.filter
      (fun j ->
        match Obs.Json.member "event" j with
        | Some (Obs.Json.String "campaign") -> true
        | _ -> false)
      (recorded ())
  in
  Alcotest.(check int) "one campaign record per mutant" 1 (List.length records);
  let r = List.hd records in
  let str k =
    match Obs.Json.member k r with
    | Some (Obs.Json.String s) -> s
    | _ -> Alcotest.fail ("campaign record lacks string field " ^ k)
  in
  Alcotest.(check string) "mutant" "variant:alloc-white" (str "mutant");
  Alcotest.(check string) "operator" "variant" (str "operator");
  Alcotest.(check string) "status" "killed" (str "status");
  Alcotest.(check bool) "names the invariant" true (str "invariant" <> "");
  Alcotest.(check bool) "names the conjunct" true (str "conjunct" <> "");
  List.iter
    (fun k ->
      match Obs.Json.member k r with
      | Some (Obs.Json.Int n) -> Alcotest.(check bool) (k ^ " positive") true (n > 0)
      | _ -> Alcotest.fail ("campaign record lacks int field " ^ k))
    [ "states_to_kill"; "ce_length"; "states_total"; "scenarios_run" ]

(* -- kill-matrix artifacts ---------------------------------------------------- *)

let test_kill_matrix_json_and_html () =
  let o = Lazy.force ablation_campaign in
  let j = Mutate.Kill_matrix.to_json o in
  (match Obs.Json.member "schema" j with
  | Some (Obs.Json.String s) ->
    Alcotest.(check string) "schema tag" "relaxing-safely-campaign-v1" s
  | _ -> Alcotest.fail "campaign JSON lacks a schema tag");
  (match Obs.Json.member "matrix" j with
  | Some (Obs.Json.List rows) ->
    Alcotest.(check int) "one matrix row per mutant" 5 (List.length rows)
  | _ -> Alcotest.fail "campaign JSON lacks the matrix");
  (* the pretty-printed report parses back *)
  (match Obs.Json.of_string (Obs.Json.to_string_pretty j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("campaign JSON does not round-trip: " ^ msg));
  let html = Mutate.Kill_matrix.to_html o in
  Alcotest.(check bool) "self-contained page" true
    (contains ~sub:"<!DOCTYPE html>" html && contains ~sub:"</html>" html);
  Alcotest.(check bool) "names a mutant" true (contains ~sub:"variant:alloc-white" html);
  Alcotest.(check bool) "renders kills" true (contains ~sub:"class=\"kill\"" html);
  Alcotest.(check bool) "no external assets" true
    (not (contains ~sub:"http://" html || contains ~sub:"https://" html))

(* -- survivors ---------------------------------------------------------------- *)

let test_survived_on_tiny_budget () =
  (* an armed mutant with a 50-state budget: every run truncates, so the
     verdict must be survived-with-open-bounds, never closed *)
  let m =
    Mutate.Campaign.of_operator
      (Option.get (Mutate.Operators.by_name fat_cfg "elide-barrier:del"))
  in
  let o = Mutate.Campaign.run ~budget:50 ~mutants:[ m ] () in
  let e = List.hd o.Mutate.Campaign.entries in
  (match e.Mutate.Campaign.classification with
  | Mutate.Campaign.Survived { closed } ->
    Alcotest.(check bool) "budget exhausted, not closed" false closed
  | Mutate.Campaign.Killed _ -> Alcotest.fail "killed within 50 states?"
  | Mutate.Campaign.Errored msg -> Alcotest.fail ("errored: " ^ msg));
  Alcotest.(check bool) "ran at least one scenario" true (e.Mutate.Campaign.runs <> []);
  List.iter
    (fun (r : Mutate.Campaign.run) ->
      Alcotest.(check bool) (r.Mutate.Campaign.run_scenario ^ " truncated") true
        r.Mutate.Campaign.run_truncated)
    e.Mutate.Campaign.runs;
  let stub = Mutate.Campaign.triage_stub e in
  Alcotest.(check bool) "stub names the mutant" true (contains ~sub:"elide-barrier:del" stub);
  Alcotest.(check bool) "stub proposes next steps" true (contains ~sub:"gcmodel walk" stub);
  let s = Mutate.Kill_matrix.stats o in
  Alcotest.(check (list string))
    "an armed survivor is an unexpected outcome" [ "elide-barrier:del" ]
    s.Mutate.Kill_matrix.unexpected_survivors

(* -- the generated manuals stay in sync --------------------------------------- *)

(* `dune runtest` runs in _build/default/test; `dune exec test/test_main.exe`
   runs wherever it was invoked — walk up until docs/ appears. *)
let read_doc name =
  let candidates =
    List.map (fun up -> Filename.concat up (Filename.concat "docs" name))
      [ "."; ".."; Filename.concat ".." ".."; List.fold_left Filename.concat ".." [ ".."; ".." ] ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> In_channel.with_open_bin path In_channel.input_all
  | None -> Alcotest.fail ("cannot locate docs/" ^ name)

let test_docs_match_generators () =
  Alcotest.(check bool)
    "docs/INVARIANTS.md matches `gcmodel doc-invariants` (regenerate if you changed the catalogue)"
    true
    (read_doc "INVARIANTS.md" = Mutate.Doc_gen.invariants_md ());
  Alcotest.(check bool)
    "docs/VARIANTS.md matches `gcmodel doc-variants` (regenerate if you changed the catalogues)"
    true
    (read_doc "VARIANTS.md" = Mutate.Doc_gen.variants_md ());
  Alcotest.(check bool)
    "docs/CERTIFICATES.md matches `gcmodel doc-certificates` (regenerate if you changed the \
     format)"
    true
    (read_doc "CERTIFICATES.md" = Mutate.Doc_gen.certificates_md ())

let test_manuals_cover_the_catalogues () =
  let inv_md = Mutate.Doc_gen.invariants_md () in
  List.iter
    (fun (i : Core.Invariants.t) ->
      Alcotest.(check bool) ("manual covers " ^ i.Core.Invariants.name) true
        (contains ~sub:("## " ^ i.Core.Invariants.name) inv_md))
    (Core.Invariants.all Core.Config.default);
  let var_md = Mutate.Doc_gen.variants_md () in
  List.iter
    (fun (v : Core.Variants.t) ->
      Alcotest.(check bool) ("manual covers " ^ v.Core.Variants.name) true
        (contains ~sub:("### " ^ v.Core.Variants.name) var_md))
    Core.Variants.all;
  List.iter
    (fun (m : Mutate.Operators.t) ->
      Alcotest.(check bool) ("manual covers " ^ m.Mutate.Operators.name) true
        (contains ~sub:("`" ^ m.Mutate.Operators.name ^ "`") var_md))
    (Mutate.Operators.all fat_cfg)

let suite =
  [
    Alcotest.test_case "catalogue counts are stable" `Quick test_catalogue_counts;
    Alcotest.test_case "armed fences = the Section 2.4 MFENCEs" `Quick
      test_armed_fences_are_the_section_24_mfences;
    Alcotest.test_case "tweak arms the mutation, not the ablation" `Quick
      test_mutant_tweak_composes;
    Alcotest.test_case "every ablation is killed" `Slow test_ablations_all_killed;
    Alcotest.test_case "kills name declared conjuncts" `Slow test_kill_conjuncts_declared;
    Alcotest.test_case "invariant metadata complete" `Quick test_invariant_metadata_complete;
    Alcotest.test_case "campaign record schema" `Slow test_campaign_record_schema;
    Alcotest.test_case "kill-matrix JSON and HTML" `Slow test_kill_matrix_json_and_html;
    Alcotest.test_case "tiny budget yields an open survivor" `Quick test_survived_on_tiny_budget;
    Alcotest.test_case "committed manuals match the generators" `Quick test_docs_match_generators;
    Alcotest.test_case "manuals cover the catalogues" `Quick test_manuals_cover_the_catalogues;
  ]
