(* Counterexample forensics: witness-carrying invariants, trace import
   validation, replay determinism, and the acceptance scenario — on the
   seeded write-barrier-elision bug the explainer must name the violated
   conjunct, the witness ref, and the store-buffer flush that lost the
   marking. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let nd_barrier () =
  Core.Scenario.witness_for (Option.get (Core.Variants.by_name "no-deletion-barrier"))

(* the same search `gcmodel explain` runs: reduced exhaustive BFS *)
let nd_violation =
  lazy
    (let sc = nd_barrier () in
     let o = Core.Scenario.explore ~safety_only:true ~reduce:Reduce.Mode.All sc in
     match o.Check.Explore.violation with
     | Some tr -> (sc, tr)
     | None -> Alcotest.fail "no-deletion-barrier witness scenario found no violation")

(* -- witness-carrying invariants --------------------------------------------- *)

let test_witness_iff_check () =
  let sc, tr = Lazy.force nd_violation in
  let final = Check.Trace.final tr in
  List.iter
    (fun inv ->
      let holds = inv.Core.Invariants.check final in
      let ws = inv.Core.Invariants.witness final in
      Alcotest.(check bool)
        (inv.Core.Invariants.name ^ ": witness empty iff check holds")
        holds (ws = []))
    (Core.Invariants.all sc.Core.Scenario.cfg);
  (* and on a healthy state every invariant is witness-free *)
  let initial = (Core.Scenario.model sc).Core.Model.system in
  List.iter
    (fun inv ->
      Alcotest.(check bool)
        (inv.Core.Invariants.name ^ ": no witness initially")
        true
        (inv.Core.Invariants.witness initial = []))
    (Core.Invariants.all sc.Core.Scenario.cfg)

(* -- Check.Trace import validation -------------------------------------------- *)

let test_import_validates_labels () =
  let sc, tr = Lazy.force nd_violation in
  let json = Check.Trace.to_json tr in
  let right = (Core.Scenario.model sc).Core.Model.system in
  (match Check.Trace.import right json with
  | Ok (broken, events) ->
    Alcotest.(check string) "broken survives roundtrip" tr.Check.Trace.broken broken;
    Alcotest.(check int) "schedule length" (Check.Trace.length tr) (List.length events)
  | Error msg -> Alcotest.fail ("import against the recording system failed: " ^ msg));
  (* a different instance must be rejected with a diagnosis, not replayed
     into a confusing failure deep in the model *)
  let other =
    Core.Scenario.make ~label:"other" ~n_muts:2 ~n_refs:2 ~shape:"single" ~max_mut_ops:1 ()
  in
  let wrong = (Core.Scenario.model other).Core.Model.system in
  match Check.Trace.import wrong json with
  | Ok _ -> Alcotest.fail "import accepted a trace from a different system"
  | Error msg ->
    Alcotest.(check bool)
      ("diagnosis mentions the mismatch: " ^ msg)
      true
      (contains ~sub:"different system" msg
       || contains ~sub:"different instance" msg)

(* -- replay determinism -------------------------------------------------------- *)

let test_explain_deterministic () =
  let sc, tr = Lazy.force nd_violation in
  let cfg = sc.Core.Scenario.cfg in
  let json = Check.Trace.to_json tr in
  let replayed () =
    let initial = (Core.Scenario.model sc).Core.Model.system in
    match Explain.Replay.import_and_replay initial json with
    | Ok tr' -> tr'
    | Error msg -> Alcotest.fail ("replay failed: " ^ msg)
  in
  let tr1 = replayed () and tr2 = replayed () in
  let rep1 = Explain.Report.analyze cfg tr1 and rep2 = Explain.Report.analyze cfg tr2 in
  Alcotest.(check string)
    "export -> import -> explain twice is byte-identical (text)"
    (Explain.Report.render rep1) (Explain.Report.render rep2);
  Alcotest.(check string)
    "export -> import -> explain twice is byte-identical (html)"
    (Explain.Report.html rep1) (Explain.Report.html rep2);
  (* the reduce=all counterexample, replay-rebuilt, explains identically
     to the checker's own trace: replay reconstructed the same states *)
  let rep0 = Explain.Report.analyze cfg tr in
  Alcotest.(check string)
    "replay-rebuilt trace explains identically to the original"
    (Explain.Report.render rep0) (Explain.Report.render rep1)

(* -- the acceptance scenario --------------------------------------------------- *)

let test_seeded_bug_explanation () =
  let sc, tr = Lazy.force nd_violation in
  let rep = Explain.Report.analyze sc.Core.Scenario.cfg tr in
  Alcotest.(check string) "violated invariant" "free_only_garbage" rep.Explain.Report.broken;
  let conjuncts =
    List.map (fun w -> w.Core.Invariants.conjunct) rep.Explain.Report.witnesses
  in
  Alcotest.(check bool)
    "names the failing conjunct" true
    (List.mem "victim-unreachable" conjuncts);
  let refs =
    List.concat_map (fun w -> w.Core.Invariants.refs) rep.Explain.Report.witnesses
  in
  Alcotest.(check bool) "carries a witness ref" true (refs <> []);
  let explanation = Explain.Report.explanation rep in
  Alcotest.(check bool)
    "explanation names the conjunct" true
    (contains ~sub:"victim-unreachable" explanation);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "explanation mentions witness ref %d" r)
        true
        (contains ~sub:(string_of_int r) explanation))
    refs;
  (* the lost marking: a mutator field write sat in the store buffer and
     was committed by Sys without any deletion barrier shading the old
     target — both halves must be visible in the narrative *)
  let narrative = Explain.Report.narrative rep in
  Alcotest.(check bool)
    "narrative shows the buffered field write" true
    (contains ~sub:"TSO store-buffer push" narrative);
  Alcotest.(check bool)
    "narrative shows the store-buffer flush that committed it" true
    (contains ~sub:"store-buffer flush" narrative);
  let timeline = Explain.Report.timeline rep in
  Alcotest.(check bool)
    "timeline tags the flush" true
    (contains ~sub:"#flush" timeline);
  Alcotest.(check bool)
    "timeline tags fences" true
    (contains ~sub:"#fence" timeline)

let test_html_smoke () =
  let sc, tr = Lazy.force nd_violation in
  let rep = Explain.Report.analyze sc.Core.Scenario.cfg tr in
  let html = Explain.Report.html rep in
  Alcotest.(check bool) "doctype" true (has_prefix ~prefix:"<!DOCTYPE html>" html);
  Alcotest.(check bool)
    "names the invariant" true
    (contains ~sub:"free_only_garbage" html);
  Alcotest.(check bool)
    "escapes are applied (no raw <-> from pp_event)" true
    (not (contains ~sub:"<->" html));
  let path = Filename.temp_file "explain" ".html" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Explain.Report.write_html path rep;
      let written = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "write_html writes html" html written)

(* -- checker profiling --------------------------------------------------------- *)

let test_profile_record () =
  let sc = nd_barrier () in
  let obs, dump = Obs.Reporter.memory () in
  let (_ : _ Check.Explore.outcome) =
    Core.Scenario.explore ~safety_only:true ~reduce:Reduce.Mode.All ~obs sc
  in
  Obs.Reporter.close obs;
  let field name = function
    | Obs.Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let profiles =
    List.filter (fun r -> field "event" r = Some (Obs.Json.String "profile")) (dump ())
  in
  Alcotest.(check bool) "exactly one profile record" true (List.length profiles = 1);
  let p = List.hd profiles in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("profile has " ^ key) true (field key p <> None))
    [
      "checker"; "states"; "transitions"; "elapsed_s"; "succ_gen_s"; "succ_gen_calls";
      "normalize_s"; "fingerprint_s"; "fingerprint_calls"; "invariant_s"; "invariant_evals";
      "other_s"; "minor_words"; "promoted_words"; "major_words"; "minor_collections";
      "major_collections"; "heap_words";
    ];
  (* attribution is real work, not zeroes *)
  (match field "invariant_evals" p with
  | Some (Obs.Json.Int n) -> Alcotest.(check bool) "invariants were evaluated" true (n > 0)
  | _ -> Alcotest.fail "invariant_evals is not an int")

let suite =
  [
    Alcotest.test_case "witness iff check" `Quick test_witness_iff_check;
    Alcotest.test_case "import validates labels" `Quick test_import_validates_labels;
    Alcotest.test_case "explain is deterministic" `Slow test_explain_deterministic;
    Alcotest.test_case "seeded bug is explained" `Quick test_seeded_bug_explanation;
    Alcotest.test_case "html report" `Quick test_html_smoke;
    Alcotest.test_case "profile record" `Slow test_profile_record;
  ]
