(* Tests for the checking harness: exact state counts on hand-built
   systems, shortest-counterexample reconstruction, the random walker, and
   fingerprint discipline. *)

open Cimp

type com = (int, int, int) Com.t

let proc c data = Com.make [ c ] data

(* A diamond: two independent one-step processes => exactly 4 states. *)
let diamond () =
  let p : com = Com.Local_op ("p", fun s -> [ s + 1 ]) in
  System.make [| "p"; "q" |] [| proc p 0; proc p 0 |]

let test_exact_state_count () =
  let o = Check.Explore.run ~normal_form:false ~invariants:[] (diamond ()) in
  Alcotest.(check int) "diamond has 4 states" 4 o.Check.Explore.states;
  Alcotest.(check int) "4 transitions" 4 o.Check.Explore.transitions;
  Alcotest.(check int) "depth 2" 2 o.Check.Explore.depth;
  Alcotest.(check int) "one terminal" 1 o.Check.Explore.deadlocks;
  Alcotest.(check bool) "closed" false o.Check.Explore.truncated

let test_normal_form_collapses_diamond () =
  (* with eager definite taus the whole diamond collapses into one state *)
  let o = Check.Explore.run ~normal_form:true ~invariants:[] (diamond ()) in
  Alcotest.(check int) "single normal form" 1 o.Check.Explore.states

let test_truncation () =
  (* an unbounded counter never closes *)
  let p : com = Com.Loop (Com.Local_op ("inc", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o = Check.Explore.run ~max_states:50 ~invariants:[] sys in
  Alcotest.(check bool) "truncated" true o.Check.Explore.truncated;
  Alcotest.(check int) "capped" 50 o.Check.Explore.states

let test_shortest_counterexample () =
  (* two routes to the bad value: length 3 (via +1 steps) and length 1
     (via +3); BFS must return the short one *)
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 3 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Explore.run ~invariants:[ ("not-three", fun sys -> (System.proc sys 0).Com.data <> 3) ] sys
  in
  match o.Check.Explore.violation with
  | Some tr ->
    Alcotest.(check string) "names the invariant" "not-three" tr.Check.Trace.broken;
    Alcotest.(check int) "shortest trace" 1 (Check.Trace.length tr);
    Alcotest.(check int) "final state violates" 3 (System.proc (Check.Trace.final tr) 0).Com.data
  | None -> Alcotest.fail "violation expected"

let test_trace_replays () =
  let p : com =
    Com.seq
      [
        Com.Local_op ("a", fun s -> [ s + 1 ]);
        Com.Local_op ("b", fun s -> [ s * 2 ]);
        Com.Local_op ("c", fun s -> [ s + 5 ]);
      ]
  in
  let sys = System.make [| "p" |] [| proc p 3 |] in
  let o =
    Check.Explore.run ~normal_form:false
      ~invariants:[ ("never-13", fun sys -> (System.proc sys 0).Com.data <> 13) ]
      sys
  in
  match o.Check.Explore.violation with
  | Some tr ->
    Alcotest.(check int) "3 steps" 3 (Check.Trace.length tr);
    (* events in order *)
    let labels =
      List.map
        (fun (s : _ Check.Trace.step) ->
          match s.Check.Trace.event with System.Tau (_, l) -> l | _ -> "?")
        tr.Check.Trace.steps
    in
    Alcotest.(check (list string)) "schedule order" [ "a"; "b"; "c" ] labels
  | None -> Alcotest.fail "13 = (3+1)*2+5 must be reached"

let test_initial_state_checked () =
  let sys = diamond () in
  let o = Check.Explore.run ~invariants:[ ("no", fun _ -> false) ] sys in
  match o.Check.Explore.violation with
  | Some tr -> Alcotest.(check int) "violation at depth 0" 0 (Check.Trace.length tr)
  | None -> Alcotest.fail "initial state must be checked"

let test_random_walk_finds_violation () =
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Random_walk.run ~steps:1_000
      ~invariants:[ ("below-20", fun sys -> (System.proc sys 0).Com.data < 20) ]
      sys
  in
  (match o.Check.Random_walk.violation with
  | Some tr ->
    Alcotest.(check bool) "final state is the offender" true
      ((System.proc (Check.Trace.final tr) 0).Com.data >= 20)
  | None -> Alcotest.fail "walker must trip the bound");
  Alcotest.(check bool) "steps counted" true (o.Check.Random_walk.steps_taken > 0)

let test_random_walk_deterministic_seed () =
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys () = System.make [| "p" |] [| proc p 0 |] in
  let run seed =
    (Check.Random_walk.run ~seed ~steps:100 ~invariants:[] (sys ())).Check.Random_walk.steps_taken
  in
  Alcotest.(check int) "same seed, same walk" (run 7) (run 7)

let test_fingerprints () =
  let sys0 = diamond () in
  let fp0 = Check.Fingerprint.of_system sys0 in
  Alcotest.(check bool) "reflexive" true (Check.Fingerprint.equal fp0 (Check.Fingerprint.of_system (diamond ())));
  match System.steps sys0 with
  | (_, sys1) :: _ ->
    Alcotest.(check bool) "progress changes the fingerprint" false
      (Check.Fingerprint.equal fp0 (Check.Fingerprint.of_system sys1))
  | [] -> Alcotest.fail "diamond must step"

(* Collision/determinism discipline for both the compact structural hash
   and the retained polymorphic one: distinct small systems must get
   distinct fingerprints, and recomputing from a freshly built equal
   system must reproduce them exactly. *)
let test_fingerprint_hashes_distinct_and_stable () =
  (* vary data only *)
  let data_sys v : (int, int, int) System.t =
    System.make [| "p" |] [| proc (Com.Local_op ("x", fun s -> [ s ])) v |]
  in
  (* vary control only (the label spine) *)
  let control_sys l : (int, int, int) System.t =
    System.make [| "p" |] [| proc (Com.Local_op (l, fun s -> [ s ])) 0 |]
  in
  let fps =
    List.init 128 (fun v -> Check.Fingerprint.of_system (data_sys v))
    @ List.init 128 (fun i -> Check.Fingerprint.of_system (control_sys ("l" ^ string_of_int i)))
  in
  let distinct l = List.length (List.sort_uniq compare l) = List.length l in
  Alcotest.(check bool) "new hash: 256 distinct systems, 256 distinct fingerprints" true
    (distinct (List.map Check.Fingerprint.fp64 fps));
  Alcotest.(check bool) "old hash: distinct on the same family" true
    (distinct (List.map Check.Fingerprint.hash_poly fps));
  Alcotest.(check bool) "fp64 is never zero" true
    (List.for_all (fun fp -> Check.Fingerprint.fp64 fp <> 0L) fps);
  (* stability: a rebuilt equal system reproduces both hashes *)
  List.iteri
    (fun v fp ->
      let fp' = Check.Fingerprint.of_system (data_sys v) in
      Alcotest.(check int64) "fp64 stable across rebuilds" (Check.Fingerprint.fp64 fp)
        (Check.Fingerprint.fp64 fp');
      Alcotest.(check int) "hash_poly stable across rebuilds" (Check.Fingerprint.hash_poly fp)
        (Check.Fingerprint.hash_poly fp');
      Alcotest.(check int) "hash stable across rebuilds" (Check.Fingerprint.hash fp)
        (Check.Fingerprint.hash fp'))
    (List.filteri (fun i _ -> i < 128) fps)

(* -- the parallel explorer ------------------------------------------------- *)

(* A bounded branching counter: wide enough to exercise multi-state
   levels, and it closes, so parallel and sequential outcomes must agree
   on every count. *)
let bounded_counter () : (int, int, int) System.t =
  let p : com =
    Com.While (("w" : Cimp.Label.t), (fun s -> s < 40), Com.Local_op ("step", fun s -> [ s + 1; s + 2 ]))
  in
  System.make [| "p" |] [| proc p 0 |]

let test_par_matches_seq_counts () =
  let seq = Check.Explore.run ~normal_form:false ~invariants:[] (bounded_counter ()) in
  let par = Check.Par_explore.run ~jobs:4 ~normal_form:false ~invariants:[] (bounded_counter ()) in
  Alcotest.(check int) "states" seq.Check.Explore.states par.Check.Explore.states;
  Alcotest.(check int) "transitions" seq.Check.Explore.transitions par.Check.Explore.transitions;
  Alcotest.(check int) "depth" seq.Check.Explore.depth par.Check.Explore.depth;
  Alcotest.(check int) "deadlocks" seq.Check.Explore.deadlocks par.Check.Explore.deadlocks;
  Alcotest.(check bool) "closed" false par.Check.Explore.truncated;
  Alcotest.(check bool) "no violation" true (par.Check.Explore.violation = None)

let test_par_matches_seq_gc_scenario () =
  (* a real GC-model instance: wide frontiers (hundreds of states per
     level) actually fan out across domains and through the sharded
     seen-set; every count and the verdict must match the sequential
     explorer *)
  let sc = Core.Scenario.make ~label:"par-eq" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let seq = Core.Scenario.explore sc in
  let par = Core.Scenario.explore ~jobs:4 sc in
  Alcotest.(check int) "states" seq.Check.Explore.states par.Check.Explore.states;
  Alcotest.(check int) "transitions" seq.Check.Explore.transitions par.Check.Explore.transitions;
  Alcotest.(check int) "depth" seq.Check.Explore.depth par.Check.Explore.depth;
  Alcotest.(check int) "deadlocks" seq.Check.Explore.deadlocks par.Check.Explore.deadlocks;
  Alcotest.(check bool) "verdict" (seq.Check.Explore.violation = None)
    (par.Check.Explore.violation = None)

let test_par_violation_same_name_and_length () =
  (* seeded violations: --jobs 1 and --jobs 4 must report the same
     invariant and a shortest trace of the same length, at depth 1 and at
     depth 3 *)
  let sys () : (int, int, int) System.t =
    let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 3 ])) in
    System.make [| "p" |] [| proc p 0 |]
  in
  let check_both name pred expected_len =
    let seq = Check.Explore.run ~invariants:[ (name, pred) ] (sys ()) in
    (match seq.Check.Explore.violation with
    | Some str ->
      Alcotest.(check string) "same invariant (seq)" name str.Check.Trace.broken;
      Alcotest.(check int) "seq trace is shortest" expected_len (Check.Trace.length str)
    | None -> Alcotest.fail "sequential explorer must find the violation");
    List.iter
      (fun jobs ->
        let par = Check.Par_explore.run ~jobs ~invariants:[ (name, pred) ] (sys ()) in
        match par.Check.Explore.violation with
        | Some ptr ->
          Alcotest.(check string) "same invariant (par)" name ptr.Check.Trace.broken;
          Alcotest.(check int) "par trace has the same length" expected_len (Check.Trace.length ptr)
        | None -> Alcotest.fail "parallel explorer must find the violation")
      [ 2; 4 ]
  in
  check_both "not-three" (fun sys -> (System.proc sys 0).Com.data <> 3) 1;
  check_both "not-five" (fun sys -> (System.proc sys 0).Com.data <> 5) 3

let test_par_coverage_matches_seq () =
  let sc = Core.Scenario.make ~label:"par-cov" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let run jobs =
    (Check.Par_explore.run ~jobs ~track_coverage:true ~invariants:[]
       (Core.Scenario.model sc).Core.Model.system)
      .Check.Explore.covered
  in
  Alcotest.(check int) "same covered set, same order" 0 (compare (run 1) (run 4))

(* -- work-stealing seen-set and termination-detection edge cases ------------ *)

(* Satellite audit companion: the 70%-load doubling path runs entirely
   under the shard mutex, so concurrent inserts that trigger resizes on
   the same shard must never lose an entry.  Four domains hammer ONE
   shard (every fingerprint has zero low bits) through dozens of
   doublings from a deliberately tiny initial capacity. *)
let test_seen_resize_hammer () =
  let module Seen = Store.Tiered in
  let seen = Seen.create ~shard_cap:64 () in
  let initial_capacity = Seen.capacity seen in
  let n_domains = 4 and per_domain = 4_000 in
  (* low 6 bits zero => all fingerprints land in shard 0; never 0 *)
  let fp d i = ((d * per_domain) + i + 1) lsl 6 in
  let insert d =
    for i = 0 to per_domain - 1 do
      match Seen.add seen (fp d i) ~parent:1 ~event:d ~depth:(i + 1) with
      | Seen.Fresh -> ()
      | Seen.Improved _ | Seen.Stale ->
        Alcotest.fail "hammer fingerprints are distinct: every add must be Fresh"
    done
  in
  let doms = Array.init (n_domains - 1) (fun d -> Domain.spawn (fun () -> insert (d + 1))) in
  insert 0;
  Array.iter Domain.join doms;
  Alcotest.(check int) "no insert lost across concurrent resizes" (n_domains * per_domain)
    (Seen.count seen);
  Alcotest.(check bool) "the shard actually resized (several doublings)" true
    (Seen.capacity seen >= initial_capacity + (8 * 1024));
  for d = 0 to n_domains - 1 do
    for i = 0 to per_domain - 1 do
      if Seen.depth_of seen (fp d i) <> Some (i + 1) then
        Alcotest.failf "entry (%d,%d) lost or corrupted by a resize" d i
    done
  done;
  (* depth relaxation across a resized table: improve, then refuse stale *)
  (match Seen.add seen (fp 0 7) ~parent:1 ~event:0 ~depth:2 with
  | Seen.Improved v -> Alcotest.(check int) "no violation recorded" (-1) v
  | _ -> Alcotest.fail "smaller depth must improve the entry");
  Alcotest.(check (option int)) "depth stamp relaxed" (Some 2) (Seen.depth_of seen (fp 0 7));
  (match Seen.add seen (fp 0 7) ~parent:1 ~event:0 ~depth:9 with
  | Seen.Stale -> ()
  | _ -> Alcotest.fail "larger depth must be stale")

(* Termination edge case: the invariant already fails at the root, so
   best-depth pruning drains the pool without expanding anything. *)
let test_par_violation_at_root () =
  let run jobs = Check.Par_explore.run ~jobs ~invariants:[ ("no", fun _ -> false) ] (diamond ()) in
  let seq = run 1 in
  List.iter
    (fun jobs ->
      let par = run jobs in
      (match par.Check.Explore.violation with
      | Some tr ->
        Alcotest.(check string) "names the invariant" "no" tr.Check.Trace.broken;
        Alcotest.(check int) "empty counterexample" 0 (Check.Trace.length tr)
      | None -> Alcotest.fail "root violation expected");
      Alcotest.(check int) "only the root is counted" seq.Check.Explore.states
        par.Check.Explore.states)
    [ 2; 4 ]

(* Termination edge case: a reducer whose ample set collapses every
   successor list to nothing — the root expansion publishes zero tasks,
   the frontier is empty immediately, and the pool must still reach
   quiescence (a regression here hangs the test). *)
let test_par_empty_frontier_after_reduction () =
  let collapse : (int, int, int) Check.Reducer.t =
    {
      Check.Reducer.name = "collapse-all";
      fingerprint = Check.Fingerprint.of_system;
      successors = (fun _ -> []);
      canon_state = Fun.id;
      sym_permuted = Atomic.make 0;
      reg_nulled = Atomic.make 0;
      deferred = Atomic.make 0;
    }
  in
  let run jobs =
    Check.Par_explore.run ~jobs ~reducer:collapse ~invariants:[] (bounded_counter ())
  in
  let seq = run 1 in
  Alcotest.(check int) "root only" 1 seq.Check.Explore.states;
  List.iter
    (fun jobs ->
      let par = run jobs in
      Alcotest.(check int) "root only" seq.Check.Explore.states par.Check.Explore.states;
      Alcotest.(check int) "root is the only deadlock" seq.Check.Explore.deadlocks
        par.Check.Explore.deadlocks;
      Alcotest.(check int) "depth 0" 0 par.Check.Explore.depth;
      Alcotest.(check bool) "clean verdict" true (par.Check.Explore.violation = None))
    [ 2; 4 ]

(* Termination edge case: a straight-line chain has exactly one pending
   task at any moment, so with --jobs 4 three workers spend the whole run
   probing for termination (and stealing at most the single task) — the
   counts must still be exactly sequential. *)
let test_par_chain_starved_workers () =
  let p : com =
    Com.While (("w" : Cimp.Label.t), (fun s -> s < 30), Com.Local_op ("step", fun s -> [ s + 1 ]))
  in
  let sys () = System.make [| "p" |] [| proc p 0 |] in
  let seq = Check.Explore.run ~normal_form:false ~invariants:[] (sys ()) in
  let par = Check.Par_explore.run ~jobs:4 ~normal_form:false ~invariants:[] (sys ()) in
  Alcotest.(check int) "states" seq.Check.Explore.states par.Check.Explore.states;
  Alcotest.(check int) "transitions" seq.Check.Explore.transitions par.Check.Explore.transitions;
  Alcotest.(check int) "depth" seq.Check.Explore.depth par.Check.Explore.depth;
  Alcotest.(check int) "deadlocks" seq.Check.Explore.deadlocks par.Check.Explore.deadlocks;
  Alcotest.(check bool) "closed" false par.Check.Explore.truncated

(* Steal-during-termination-probe interleaving, made deterministic with
   scheduler hooks: whichever worker claims the root expansion (either
   can — a fast-spawning worker 1 may steal the root before worker 0
   pops it) holds it (pending stays at 1 with every deque empty) until
   the other worker's quiescence probe has run with pending > 0.  The
   probe must NOT terminate the run — when the holder resumes and
   publishes successors, the prober goes back to stealing, and the final
   counts prove no worker exited early. *)
let test_par_steal_during_termination_probe () =
  let probed_nonzero = Atomic.make false in
  let holder = Atomic.make (-1) in
  let hooks =
    {
      Check.Par_explore.no_hooks with
      on_expand =
        (fun ~worker ~depth ->
          if depth = 0 then begin
            Atomic.set holder worker;
            while not (Atomic.get probed_nonzero) do
              Domain.cpu_relax ()
            done
          end);
      on_probe =
        (fun ~worker ~pending ->
          let h = Atomic.get holder in
          if h >= 0 && worker <> h && pending > 0 then Atomic.set probed_nonzero true);
    }
  in
  let seq = Check.Explore.run ~normal_form:false ~invariants:[] (bounded_counter ()) in
  let par =
    Check.Par_explore.run ~jobs:2 ~normal_form:false ~hooks ~invariants:[] (bounded_counter ())
  in
  Alcotest.(check bool) "a probe observed pending work" true (Atomic.get probed_nonzero);
  Alcotest.(check int) "states" seq.Check.Explore.states par.Check.Explore.states;
  Alcotest.(check int) "transitions" seq.Check.Explore.transitions par.Check.Explore.transitions;
  Alcotest.(check int) "depth" seq.Check.Explore.depth par.Check.Explore.depth;
  Alcotest.(check int) "deadlocks" seq.Check.Explore.deadlocks par.Check.Explore.deadlocks

(* Acceptance: verdict, violated invariant and counterexample length are
   identical across --jobs 1/2/4, with and without --reduce all, on a GC
   instance. *)
let test_par_jobs_equivalence_with_reduce () =
  let sc = Core.Scenario.make ~label:"par-eq-red" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let verdict (o : _ Check.Explore.outcome) =
    match o.Check.Explore.violation with
    | None -> ("safe", -1)
    | Some tr -> (tr.Check.Trace.broken, Check.Trace.length tr)
  in
  List.iter
    (fun reduce ->
      let base = verdict (Core.Scenario.explore ~jobs:1 ~reduce sc) in
      List.iter
        (fun jobs ->
          Alcotest.(check (pair string int))
            (Fmt.str "verdict equivalence at jobs=%d reduce=%s" jobs (Reduce.Mode.to_string reduce))
            base
            (verdict (Core.Scenario.explore ~jobs ~reduce sc)))
        [ 2; 4 ])
    [ Reduce.Mode.None_; Reduce.Mode.All ]

(* -- the random-walk swarm -------------------------------------------------- *)

let test_swarm_finds_violation () =
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Random_walk.swarm ~jobs:3 ~steps:3_000
      ~invariants:[ ("below-20", fun sys -> (System.proc sys 0).Com.data < 20) ]
      sys
  in
  match o.Check.Random_walk.violation with
  | Some tr ->
    Alcotest.(check bool) "final state is the offender" true
      ((System.proc (Check.Trace.final tr) 0).Com.data >= 20)
  | None -> Alcotest.fail "swarm must trip the bound"

let test_swarm_deterministic_totals () =
  (* without a violation every domain consumes exactly its budget share,
     so aggregate counters are deterministic in (seed, jobs) *)
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys () = System.make [| "p" |] [| proc p 0 |] in
  let run () = Check.Random_walk.swarm ~jobs:3 ~seed:7 ~steps:100 ~invariants:[] (sys ()) in
  let a = run () and b = run () in
  Alcotest.(check int) "all 100 steps taken" 100 a.Check.Random_walk.steps_taken;
  Alcotest.(check int) "same total steps" a.Check.Random_walk.steps_taken b.Check.Random_walk.steps_taken;
  Alcotest.(check int) "same total runs" a.Check.Random_walk.runs b.Check.Random_walk.runs

(* qcheck: exploration of a random branching counter visits exactly the
   values representable as ordered sums of the branch increments, and the
   state count equals the number of distinct reachable values (+ control). *)
let prop_explore_counts_reachable_values =
  QCheck.Test.make ~name:"explorer visits each reachable value once" ~count:50
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (a, b) ->
      let p : com = Com.Local_op ("x", fun s -> [ s + a; s + b ]) in
      let sys = System.make [| "p" |] [| proc p 0 |] in
      let o = Check.Explore.run ~normal_form:false ~invariants:[] sys in
      let expected = if a = b then 2 else 3 in
      o.Check.Explore.states = expected)

let suite =
  [
    Alcotest.test_case "exact state counts" `Quick test_exact_state_count;
    Alcotest.test_case "normal form collapses invisible steps" `Quick test_normal_form_collapses_diamond;
    Alcotest.test_case "truncation at the cap" `Quick test_truncation;
    Alcotest.test_case "BFS returns a shortest counterexample" `Quick test_shortest_counterexample;
    Alcotest.test_case "traces replay the schedule in order" `Quick test_trace_replays;
    Alcotest.test_case "the initial state is checked" `Quick test_initial_state_checked;
    Alcotest.test_case "random walks find violations" `Quick test_random_walk_finds_violation;
    Alcotest.test_case "walks are seed-deterministic" `Quick test_random_walk_deterministic_seed;
    Alcotest.test_case "fingerprint discipline" `Quick test_fingerprints;
    Alcotest.test_case "fingerprint hashes: distinct and stable" `Quick
      test_fingerprint_hashes_distinct_and_stable;
    Alcotest.test_case "par explorer matches sequential counts" `Quick test_par_matches_seq_counts;
    Alcotest.test_case "par explorer matches sequential on a GC instance" `Quick
      test_par_matches_seq_gc_scenario;
    Alcotest.test_case "par violation: same invariant, same shortest length" `Quick
      test_par_violation_same_name_and_length;
    Alcotest.test_case "par coverage matches sequential" `Quick test_par_coverage_matches_seq;
    Alcotest.test_case "seen shard resize hammer" `Quick test_seen_resize_hammer;
    Alcotest.test_case "par violation at the root" `Quick test_par_violation_at_root;
    Alcotest.test_case "par empty frontier after reduction collapse" `Quick
      test_par_empty_frontier_after_reduction;
    Alcotest.test_case "par starved workers on a chain" `Quick test_par_chain_starved_workers;
    Alcotest.test_case "steal during termination probe" `Quick
      test_par_steal_during_termination_probe;
    Alcotest.test_case "par jobs equivalence with and without reduce" `Slow
      test_par_jobs_equivalence_with_reduce;
    Alcotest.test_case "swarm finds violations" `Quick test_swarm_finds_violation;
    Alcotest.test_case "swarm totals are (seed, jobs)-deterministic" `Quick
      test_swarm_deterministic_totals;
    QCheck_alcotest.to_alcotest prop_explore_counts_reachable_values;
  ]
