(* HDR latency histograms (lib/obs/latency): bucket arithmetic, lane
   merging, coordinated-omission back-fill, cross-domain exactness, and
   the runtime's latency section / heartbeat records built on top. *)

module L = Obs.Latency

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* -- bucket arithmetic --------------------------------------------------------- *)

let check_roundtrip v =
  let rep = L.representative (L.bucket_of v) in
  let err = Float.abs (float_of_int (rep - v)) /. float_of_int (max v 1) in
  if err > 0.02 then
    Alcotest.failf "value %d -> bucket %d -> representative %d: error %.4f > 2%%" v
      (L.bucket_of v) rep err

let test_bucket_roundtrip () =
  (* dense sweep of the small range, then power-of-two boundaries and a
     deterministic pseudo-random sweep across the full covered range *)
  for v = 0 to 100_000 do
    check_roundtrip v
  done;
  let clamp_ns = 100_000_000_000 in
  let rec pow2 p =
    if p <= clamp_ns then begin
      List.iter check_roundtrip [ p - 1; p; p + 1 ];
      pow2 (p * 2)
    end
  in
  pow2 2;
  let s = ref 0x9e3779b9 in
  for _ = 1 to 20_000 do
    s := ((!s * 2862933555777941757) + 3037000493) land max_int;
    check_roundtrip (!s mod clamp_ns)
  done;
  (* bucket indices are monotone in the value and stay in range *)
  Alcotest.(check bool) "n_buckets covers the clamp" true (L.bucket_of clamp_ns < L.n_buckets)

let test_bucket_exact_below_32 () =
  for v = 0 to 31 do
    Alcotest.(check int) (Fmt.str "value %d is exact" v) v (L.representative (L.bucket_of v))
  done

(* -- byte-pinned percentile arithmetic ----------------------------------------- *)

(* Recording 0..31 once each exercises the exact sub-32 buckets; the
   JSON (field order, float rendering, rank arithmetic) is pinned
   byte-for-byte so any drift in the percentile maths shows up. *)
let test_pinned_json_small () =
  let h = L.create ~lanes:1 "pin-small" in
  for v = 0 to 31 do
    L.record h v
  done;
  Alcotest.(check string) "pinned small-range JSON"
    {|{"count":32,"mean_ns":15.5,"p50_ns":15,"p90_ns":28,"p99_ns":31,"p999_ns":31,"min_ns":0,"max_ns":31}|}
    (Obs.Json.to_string (L.to_json h))

let test_pinned_json_large () =
  (* four spikes across four decades: p50 lands on the 10 us bucket
     representative (10112, within 2% of 10000), the upper percentiles
     clamp to the exact observed max *)
  let h = L.create ~lanes:1 "pin-large" in
  List.iter
    (fun v ->
      for _ = 1 to 25 do
        L.record h v
      done)
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  Alcotest.(check string) "pinned four-decade JSON"
    {|{"count":100,"mean_ns":277750.0,"p50_ns":10112,"p90_ns":1000000,"p99_ns":1000000,"p999_ns":1000000,"min_ns":1000,"max_ns":1000000}|}
    (Obs.Json.to_string (L.to_json h))

let test_empty_snapshot_nulls () =
  let h = L.create "empty" in
  Alcotest.(check (option int)) "no percentile when empty" None (L.percentile h 50.);
  Alcotest.(check bool) "no snapshot when empty" true (L.snapshot h = None);
  Alcotest.(check string) "empty histogram emits nulls, never NaN"
    {|{"count":0,"mean_ns":null,"p50_ns":null,"p90_ns":null,"p99_ns":null,"p999_ns":null,"min_ns":null,"max_ns":null}|}
    (Obs.Json.to_string (L.to_json h))

(* -- cross-domain merge -------------------------------------------------------- *)

let test_merge_determinism () =
  (* the same multiset recorded from 4 domains must merge to the exact
     same snapshot as a single-writer recording: counts are exact, so
     the JSON is byte-identical no matter which lane each value hit *)
  let values = List.init 4_000 (fun i -> i * 37 mod 5_000_000) in
  let solo = L.create ~lanes:1 "solo" in
  List.iter (L.record solo) values;
  let multi = L.create "multi" in
  let part d = List.filteri (fun i _ -> i mod 4 = d) values in
  let doms =
    Array.init 4 (fun d ->
        let vs = part d in
        Domain.spawn (fun () -> List.iter (L.record multi) vs))
  in
  Array.iter Domain.join doms;
  Alcotest.(check string) "4-domain merge == single-writer"
    (Obs.Json.to_string (L.to_json solo))
    (Obs.Json.to_string (L.to_json multi))

let test_concurrent_hammer_exact () =
  (* 4 domains record disjoint ranges concurrently; count, min, max and
     mean must come out exact — nothing sampled, nothing lost *)
  let h = L.create "hammer" in
  let per = 50_000 in
  let doms =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              L.record h ((d * per) + i)
            done))
  in
  Array.iter Domain.join doms;
  let n = 4 * per in
  Alcotest.(check int) "exact count" n (L.count h);
  Alcotest.(check (option int)) "exact min" (Some 1) (L.min_ns h);
  Alcotest.(check (option int)) "exact max" (Some n) (L.max_ns h);
  match L.snapshot h with
  | None -> Alcotest.fail "snapshot empty after 200k records"
  | Some s ->
    (* sum of 1..n is exact, so the mean is too *)
    Alcotest.(check (float 1e-6)) "exact mean" ((float_of_int n +. 1.) /. 2.) s.L.mean_ns

(* -- coordinated omission ------------------------------------------------------ *)

let test_co_backfill_arithmetic () =
  (* a 35 ns observation of a 10 ns-period operation hides two missed
     occurrences: back-fill records 25 and 15 (remainder 5 < T stops) *)
  let h = L.create ~lanes:1 "co" in
  L.record_corrected h ~expected_interval_ns:10 35;
  (match L.snapshot h with
  | None -> Alcotest.fail "empty after record_corrected"
  | Some s ->
    Alcotest.(check int) "count includes back-fill" 3 s.L.count;
    Alcotest.(check (float 1e-9)) "sum is 35+25+15" 25.0 s.L.mean_ns;
    Alcotest.(check int) "max is the raw observation" 35 s.L.max_ns;
    Alcotest.(check int) "min is the last back-fill" 15 s.L.min_ns);
  (* interval <= 0 disables the correction *)
  let h2 = L.create ~lanes:1 "co-off" in
  L.record_corrected h2 ~expected_interval_ns:0 35;
  Alcotest.(check int) "no back-fill when disabled" 1 (L.count h2)

let test_recorder_stub_clock () =
  (* deterministic stub clock: ticks at 0, 10, 20, 60 give intervals
     10, 10, 40; the stalled 40 back-fills 30, 20 and 10 *)
  let times = ref [ 0; 10; 20; 60 ] in
  let clock () =
    match !times with
    | t :: rest ->
      times := rest;
      t
    | [] -> Alcotest.fail "stub clock exhausted"
  in
  let h = L.create ~lanes:1 "ticks" in
  let r = L.recorder ~clock ~expected_interval_ns:10 h in
  L.tick r;
  (* arms *)
  L.tick r;
  L.tick r;
  L.tick r;
  Alcotest.(check int) "3 intervals + 3 back-fills" 6 (L.count h);
  Alcotest.(check (option int)) "max is the stalled interval" (Some 40) (L.max_ns h);
  match L.snapshot h with
  | None -> Alcotest.fail "empty after ticks"
  | Some s -> Alcotest.(check (float 1e-9)) "sum is 120" (120. /. 6.) s.L.mean_ns

(* -- runtime integration ------------------------------------------------------- *)

let record_fields r =
  match r with Obs.Json.Obj fields -> fields | _ -> []

let records_of_event name records =
  List.filter_map
    (fun r ->
      let fields = record_fields r in
      match List.assoc_opt "event" fields with
      | Some (Obs.Json.String e) when e = name -> Some fields
      | _ -> None)
    records

let sub fields k =
  match List.assoc_opt k fields with
  | Some (Obs.Json.Obj sub) -> sub
  | _ -> Alcotest.failf "field %s missing or not an object" k

let positive_int fields k =
  match List.assoc_opt k fields with
  | Some (Obs.Json.Int n) when n > 0 -> n
  | Some j -> Alcotest.failf "field %s not a positive int: %s" k (Obs.Json.to_string j)
  | None -> Alcotest.failf "field %s missing" k

let test_runtime_latency_section_and_heartbeat () =
  let obs, dump = Obs.Reporter.memory () in
  let stats = Runtime.Harness.run ~n_muts:2 ~duration:0.4 ~obs () in
  Obs.Reporter.close obs;
  (* the harness stats carry a structured latency section *)
  let lat = record_fields stats.Runtime.Harness.latency in
  Alcotest.(check bool) "latency enabled" true
    (List.assoc_opt "enabled" lat = Some (Obs.Json.Bool true));
  let hs = sub lat "hs_round" in
  let n = positive_int hs "count" in
  Alcotest.(check int) "hs_round count == hs_rounds" stats.Runtime.Harness.hs_rounds n;
  ignore (positive_int hs "p50_ns");
  ignore (positive_int hs "p99_ns");
  ignore (positive_int hs "max_ns");
  (match List.assoc_opt "hs_ack" lat with
  | Some (Obs.Json.List acks) ->
    Alcotest.(check int) "one ack histogram per mutator" 2 (List.length acks)
  | _ -> Alcotest.fail "latency section lacks per-mutator hs_ack");
  ignore (sub lat "pause");
  ignore (sub lat "barrier_slow");
  (* heartbeats: at least one per run, with live handshake percentiles *)
  let hbs = records_of_event "runtime-heartbeat" (dump ()) in
  Alcotest.(check bool) "at least one heartbeat" true (List.length hbs >= 1);
  let last = List.nth hbs (List.length hbs - 1) in
  ignore (positive_int (sub last "hs") "p50_ns");
  (match List.assoc_opt "alloc_per_sec" last with
  | Some (Obs.Json.Float _) -> ()
  | j -> Alcotest.failf "heartbeat alloc_per_sec: %s"
           (match j with Some j -> Obs.Json.to_string j | None -> "missing"));
  (match List.assoc_opt "hs_ack_p99_ns" last with
  | Some (Obs.Json.List l) -> Alcotest.(check int) "ack tail per mutator" 2 (List.length l)
  | _ -> Alcotest.fail "heartbeat lacks hs_ack_p99_ns")

let test_dashboard_runtime_panel () =
  let buf = Buffer.create 512 in
  let d = Obs.Dashboard.create ~mode:Obs.Dashboard.Plain ~out:(Buffer.add_string buf) () in
  let hist count p50 p99 =
    Obs.Json.Obj
      [
        ("count", Obs.Json.Int count);
        ("p50_ns", Obs.Json.Int p50);
        ("p90_ns", Obs.Json.Int p99);
        ("p99_ns", Obs.Json.Int p99);
        ("p999_ns", Obs.Json.Int p99);
        ("min_ns", Obs.Json.Int p50);
        ("max_ns", Obs.Json.Int (2 * p99));
      ]
  in
  Obs.Dashboard.update d "runtime-heartbeat"
    [
      ("cycles", Obs.Json.Int 12);
      ("live", Obs.Json.Int 34);
      ("alloc_per_sec", Obs.Json.Float 5600.);
      ("alloc_stalls", Obs.Json.Int 1);
      ("pause", hist 12 1_000_000 3_000_000);
      ("hs", hist 40 8_000 90_000);
      ("hs_ack_p99_ns", Obs.Json.List [ Obs.Json.Int 1_000; Obs.Json.Int 2_000 ]);
    ];
  Obs.Dashboard.update d "harness"
    [ ("cycles", Obs.Json.Int 12); ("live_at_end", Obs.Json.Int 34); ("violation", Obs.Json.Null) ];
  Obs.Dashboard.finish d;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "runtime block rendered" true (contains out "runtime");
  Alcotest.(check bool) "pause line rendered" true (contains out "pause");
  Alcotest.(check bool) "handshake tail rendered" true (contains out "p99.9");
  Alcotest.(check bool) "verdict rendered" true (contains out "SAFE")

let suite =
  [
    Alcotest.test_case "buckets: round-trip error <= 2%" `Quick test_bucket_roundtrip;
    Alcotest.test_case "buckets: exact below 32" `Quick test_bucket_exact_below_32;
    Alcotest.test_case "json: pinned small-range percentiles" `Quick test_pinned_json_small;
    Alcotest.test_case "json: pinned four-decade percentiles" `Quick test_pinned_json_large;
    Alcotest.test_case "json: empty histogram is nulls" `Quick test_empty_snapshot_nulls;
    Alcotest.test_case "merge: 4-domain == single-writer" `Quick test_merge_determinism;
    Alcotest.test_case "merge: concurrent records are exact" `Quick test_concurrent_hammer_exact;
    Alcotest.test_case "co: back-fill arithmetic" `Quick test_co_backfill_arithmetic;
    Alcotest.test_case "co: recorder under stub clock" `Quick test_recorder_stub_clock;
    Alcotest.test_case "runtime: latency section and heartbeat" `Quick
      test_runtime_latency_section_and_heartbeat;
    Alcotest.test_case "dashboard: runtime panel renders" `Quick test_dashboard_runtime_panel;
  ]
