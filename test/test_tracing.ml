(* Tests for the concurrency-telemetry layer: the per-domain span tracer
   (deterministic output under a stubbed clock, Chrome trace-event shape,
   ring overflow), domain-safe histograms under real domains, contention
   probes and the serial-fraction estimate, the scaling-detail record of
   the parallel checker, the live dashboard's plain renderer, and the
   BENCH regression gate. *)

(* -- span tracer -------------------------------------------------------------- *)

(* a deterministic clock: 1 us per read *)
let stub_clock () =
  let t = ref 0 in
  fun () ->
    t := !t + 1_000;
    !t

(* one fixed recording sequence, used by both determinism runs *)
let record_fixture tr =
  let n_a = Obs.Tracing.intern tr "alpha" in
  let n_b = Obs.Tracing.intern tr "beta" in
  Obs.Tracing.set_lane tr ~dom:0 "worker 0";
  Obs.Tracing.set_lane tr ~dom:1 "worker 1";
  let s0 = Obs.Tracing.now tr in
  Obs.Tracing.span tr ~dom:0 ~name:n_a ~start_ns:s0;
  Obs.Tracing.span_between tr ~dom:1 ~name:n_b ~start_ns:2_000 ~stop_ns:5_000;
  Obs.Tracing.span_args tr ~dom:0 ~name:n_a ~start_ns:6_000 ~stop_ns:9_000
    ~args:[ ("level", Obs.Json.Int 3) ];
  Obs.Tracing.instant tr ~dom:1 ~name:n_b

let contains s affix =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_tracer_byte_stable () =
  let render () =
    let tr = Obs.Tracing.create ~capacity:64 ~clock:(stub_clock ()) ~domains:2 () in
    record_fixture tr;
    Obs.Json.to_string (Obs.Tracing.to_json tr)
  in
  let a = render () and b = render () in
  Alcotest.(check string) "identical runs render byte-identically" a b;
  Alcotest.(check bool) "traceEvents array present" true (contains a "\"traceEvents\"")

let test_tracer_chrome_shape () =
  let tr = Obs.Tracing.create ~capacity:64 ~clock:(stub_clock ()) ~domains:2 () in
  record_fixture tr;
  let doc = Obs.Tracing.to_json tr in
  let events =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events recorded" true (List.length events > 0);
  List.iter
    (fun ev ->
      let has k =
        match Obs.Json.member k ev with
        | Some _ -> ()
        | None -> Alcotest.failf "event lacks %s: %s" k (Obs.Json.to_string ev)
      in
      has "ph";
      has "ts";
      has "pid";
      has "tid";
      match Obs.Json.member "ph" ev with
      | Some (Obs.Json.String "X") ->
        has "dur";
        has "name"
      | Some (Obs.Json.String ("i" | "M")) -> ()
      | ph ->
        Alcotest.failf "unexpected ph %s"
          (match ph with Some j -> Obs.Json.to_string j | None -> "?"))
    events;
  (* the parse/print round trip keeps the document loadable *)
  match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "trace JSON does not reparse: %s" msg

let test_tracer_ring_overflow () =
  let tr = Obs.Tracing.create ~capacity:4 ~clock:(stub_clock ()) ~domains:1 () in
  let n_first = Obs.Tracing.intern tr "first" in
  let n_rest = Obs.Tracing.intern tr "rest" in
  Obs.Tracing.span_between tr ~dom:0 ~name:n_first ~start_ns:0 ~stop_ns:1_000;
  for _ = 2 to 10 do
    Obs.Tracing.span_between tr ~dom:0 ~name:n_rest ~start_ns:0 ~stop_ns:1_000
  done;
  Alcotest.(check int) "buffer holds exactly its capacity" 4 (Obs.Tracing.events tr);
  Alcotest.(check int) "overflow counted as drops" 6 (Obs.Tracing.drops tr);
  let s = Obs.Json.to_string (Obs.Tracing.to_json tr) in
  Alcotest.(check bool) "earliest event survives the overflow" true (contains s "\"first\"")

let test_tracer_null_is_inert () =
  let tr = Obs.Tracing.null in
  Alcotest.(check bool) "disabled" false (Obs.Tracing.enabled tr);
  Alcotest.(check int) "no lanes" 0 (Obs.Tracing.lanes tr);
  Alcotest.(check int) "now is 0" 0 (Obs.Tracing.now tr);
  (* recording into the null tracer must be a no-op, not a crash *)
  Obs.Tracing.span tr ~dom:0 ~name:0 ~start_ns:0;
  Obs.Tracing.instant tr ~dom:0 ~name:0;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Tracing.events tr)

(* -- histograms under domains (satellite: domain-safe Metrics) ---------------- *)

let test_histogram_hammered_by_domains () =
  let h = Obs.Metrics.histogram ~registry:(Obs.Metrics.create_registry ()) "lat" in
  let per_domain = 25_000 in
  let worker () =
    for i = 1 to per_domain do
      Obs.Metrics.observe h (float_of_int i)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no observation lost across 4 domains" (4 * per_domain)
    (Obs.Metrics.observations h);
  Alcotest.(check (float 0.)) "min survives" 1. (Obs.Metrics.hmin h);
  Alcotest.(check (float 0.)) "max survives" (float_of_int per_domain) (Obs.Metrics.hmax h);
  let p50 = Obs.Metrics.percentile h 50. in
  Alcotest.(check bool) "p50 inside the observed range" true
    (p50 >= 1. && p50 <= float_of_int per_domain)

(* -- contention probes -------------------------------------------------------- *)

let test_lock_uncontended_counts () =
  let l = Obs.Contention.make_lock () in
  for _ = 1 to 100 do
    Obs.Contention.with_lock l (fun () -> ())
  done;
  let s = Obs.Contention.lock_stats l in
  Alcotest.(check int) "acquires" 100 s.Obs.Contention.acquires;
  Alcotest.(check int) "no contention alone" 0 s.Obs.Contention.contended;
  Alcotest.(check int) "no wait alone" 0 s.Obs.Contention.wait_ns

let test_lock_contended_measures_wait () =
  let l = Obs.Contention.make_lock () in
  let holding = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Obs.Contention.with_lock l (fun () ->
            Atomic.set holding true;
            Unix.sleepf 0.02))
  in
  while not (Atomic.get holding) do
    Domain.cpu_relax ()
  done;
  Obs.Contention.with_lock l (fun () -> ());
  Domain.join d;
  let s = Obs.Contention.lock_stats l in
  Alcotest.(check int) "both acquires counted" 2 s.Obs.Contention.acquires;
  Alcotest.(check int) "the blocked acquire is contended" 1 s.Obs.Contention.contended;
  Alcotest.(check bool) "wait time measured (>= 10ms)" true
    (s.Obs.Contention.wait_ns >= 10_000_000);
  Alcotest.(check bool) "max wait <= total wait" true
    (s.Obs.Contention.max_wait_ns <= s.Obs.Contention.wait_ns);
  let total, per_shard = Obs.Contention.shard_summary [| l |] in
  Alcotest.(check int) "shard summary aggregates" 2 total.Obs.Contention.acquires;
  Alcotest.(check int) "one shard" 1 (Array.length per_shard);
  Alcotest.(check bool) "per-shard wait in seconds" true (per_shard.(0) >= 0.01)

let test_serial_fraction_estimate () =
  (* 4 domains, 1s wall, 2.5s of busy time: serial s = (4 - 2.5)/3 = 0.5,
     f = 0.5/2.5 = 0.2, effective parallelism 2.5 — and Amdahl at n=4
     reproduces the measured speedup: 1/(0.2 + 0.8/4) = 2.5 *)
  let est =
    Obs.Contention.estimate ~jobs:4 ~wall_s:1.0 ~busy_per_domain:[| 1.0; 0.5; 0.5; 0.5 |]
  in
  Alcotest.(check (float 1e-9)) "serial seconds" 0.5 est.Obs.Contention.serial_s;
  Alcotest.(check (float 1e-9)) "serial fraction" 0.2 est.Obs.Contention.serial_fraction;
  Alcotest.(check (float 1e-9)) "effective parallelism" 2.5
    est.Obs.Contention.effective_parallelism;
  Alcotest.(check (float 1e-9)) "Amdahl consistency at n=jobs" 2.5
    (Obs.Contention.predicted_speedup est 4);
  let seq = Obs.Contention.estimate ~jobs:1 ~wall_s:1.0 ~busy_per_domain:[| 1.0 |] in
  Alcotest.(check (float 1e-9)) "jobs=1 has no serial component" 0.
    seq.Obs.Contention.serial_fraction

(* -- parallel checker: tracer + scaling-detail -------------------------------- *)

let field_names = List.map fst

let test_par_explore_traces_and_scaling_detail () =
  let sc = Core.Scenario.baseline in
  let model = Core.Scenario.model sc in
  let invariants = Core.Scenario.invariants sc in
  let obs, dump = Obs.Reporter.memory () in
  let tracer = Obs.Tracing.create ~domains:2 () in
  let o = Check.Par_explore.run ~jobs:2 ~obs ~tracer ~invariants model.Core.Model.system in
  Obs.Reporter.close obs;
  let seq = Check.Par_explore.run ~jobs:1 ~invariants model.Core.Model.system in
  Alcotest.(check int) "jobs=2 visits the sequential state count" seq.Check.Explore.states
    o.Check.Explore.states;
  (* spans: both worker lanes carry events, and the work-stealing span
     taxonomy replaces the old barrier one (every worker ends its run
     with a steal-fail + termination-probe pair, so those are always
     present; a successful [steal] is exercised deterministically by the
     dedicated test below) *)
  Alcotest.(check bool) "spans recorded" true (Obs.Tracing.events tracer > 0);
  let s = Obs.Json.to_string (Obs.Tracing.to_json tracer) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " span present") true (contains s ("\"" ^ affix ^ "\"")))
    [ "expand"; "successor-gen"; "seen-insert"; "deque-push"; "steal-fail"; "termination-probe";
      "worker 1" ];
  (* the scaling-detail record carries the attribution schema *)
  let detail =
    List.filter_map
      (fun r ->
        match r with
        | Obs.Json.Obj fields
          when List.assoc_opt "event" fields = Some (Obs.Json.String "scaling-detail") ->
          Some fields
        | _ -> None)
      (dump ())
  in
  Alcotest.(check int) "one scaling-detail record" 1 (List.length detail);
  let fields = List.hd detail in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("scaling-detail has " ^ k) true (List.mem k (field_names fields)))
    [
      "jobs"; "wall_s"; "busy_s"; "serial_s"; "serial_fraction"; "effective_parallelism";
      "busy_per_domain_s"; "idle_wait_s"; "idle_per_domain_s"; "steals"; "steal_fails";
      "stolen_tasks"; "termination_probes"; "lock_acquires"; "lock_contended"; "lock_wait_s";
      "shard_wait_s"; "deque_wait_s";
    ];
  (match List.assoc_opt "serial_fraction" fields with
  | Some (Obs.Json.Float f) ->
    Alcotest.(check bool) "serial fraction in [0,1]" true (f >= 0. && f <= 1.)
  | _ -> Alcotest.fail "serial_fraction is not a float");
  match List.assoc_opt "busy_per_domain_s" fields with
  | Some (Obs.Json.List l) -> Alcotest.(check int) "one busy entry per domain" 2 (List.length l)
  | _ -> Alcotest.fail "busy_per_domain_s is not a list"

(* A deterministic successful steal: a 16-way branching counter (the
   While root unfolds by a tau step at depth 1, then the Local_op fans
   out 16 successors at depth 2), worker 0 is held (scheduler hook) at
   its first depth-2 expansion until some worker has stolen.  At the
   hold point either a steal already happened (releasing instantly) or
   worker 0's deque still holds the 8 depth-2 tasks its batch pop left
   behind, so worker 1's steal must succeed.  The [steal] span and the
   scaling-detail steal counters follow. *)
let test_par_explore_steal_span () =
  let open Cimp in
  let p : (int, int, int) Com.t =
    Com.While
      ( ("w" : Cimp.Label.t),
        (fun s -> s < 400),
        Com.Local_op ("step", fun s -> List.init 16 (fun i -> s + i + 1)) )
  in
  let sys () = System.make [| "p" |] [| Com.make [ p ] 0 |] in
  let stole = Atomic.make false in
  let held = Atomic.make false in
  let hooks =
    {
      Check.Par_explore.no_hooks with
      on_expand =
        (fun ~worker ~depth ->
          if worker = 0 && depth = 2 && not (Atomic.exchange held true) then
            while not (Atomic.get stole) do
              Domain.cpu_relax ()
            done);
      on_steal = (fun ~worker:_ ~victim:_ ~stolen:_ -> Atomic.set stole true);
    }
  in
  let obs, dump = Obs.Reporter.memory () in
  let tracer = Obs.Tracing.create ~domains:2 () in
  let seq = Check.Explore.run ~normal_form:false ~invariants:[] (sys ()) in
  let par =
    Check.Par_explore.run ~jobs:2 ~normal_form:false ~obs ~tracer ~hooks ~invariants:[] (sys ())
  in
  Obs.Reporter.close obs;
  Alcotest.(check bool) "a steal happened" true (Atomic.get stole);
  Alcotest.(check int) "states still sequential" seq.Check.Explore.states par.Check.Explore.states;
  Alcotest.(check int) "transitions still sequential" seq.Check.Explore.transitions
    par.Check.Explore.transitions;
  let s = Obs.Json.to_string (Obs.Tracing.to_json tracer) in
  Alcotest.(check bool) "steal span present" true (contains s "\"steal\"");
  let steals =
    List.find_map
      (fun r ->
        match r with
        | Obs.Json.Obj fields
          when List.assoc_opt "event" fields = Some (Obs.Json.String "scaling-detail") ->
          List.assoc_opt "steals" fields
        | _ -> None)
      (dump ())
  in
  match steals with
  | Some (Obs.Json.Int n) -> Alcotest.(check bool) "steals counted" true (n >= 1)
  | _ -> Alcotest.fail "scaling-detail must count steals"

(* -- live dashboard (plain renderer) ------------------------------------------ *)

let test_dashboard_plain_renders () =
  let buf = Buffer.create 256 in
  let d = Obs.Dashboard.create ~mode:Obs.Dashboard.Plain ~out:(Buffer.add_string buf) () in
  Obs.Dashboard.update d "heartbeat"
    [
      ("checker", Obs.Json.String "explore");
      ("states", Obs.Json.Int 1234);
      ("max_states", Obs.Json.Int 10_000);
      ("states_per_sec", Obs.Json.Float 500.);
    ];
  Obs.Dashboard.update d "scaling-detail"
    [
      ("shard_wait_s", Obs.Json.List [ Obs.Json.Float 0.2; Obs.Json.Float 0.8 ]);
      ("lock_wait_s", Obs.Json.Float 1.0);
      ("busy_s", Obs.Json.Float 4.0);
      ("serial_fraction", Obs.Json.Float 0.25);
    ];
  Obs.Dashboard.update d "outcome" [ ("states", Obs.Json.Int 2000) ];
  Obs.Dashboard.finish d;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "panel mentions the checker" true (contains out "explore");
  Alcotest.(check bool) "progress rendered" true (contains out "2000");
  Alcotest.(check bool) "verdict rendered" true (contains out "ok");
  Alcotest.(check bool) "shard heat rendered" true (contains out "shards");
  Alcotest.(check bool) "plain mode emits no ANSI escapes" false (contains out "\027[")

let test_reporter_live_spec () =
  match Obs.Reporter.of_spec "live" with
  | Ok t ->
    Alcotest.(check bool) "live reporter is enabled" true (Obs.Reporter.enabled t);
    Obs.Reporter.close t
  | Error msg -> Alcotest.fail msg

(* -- benchdiff ---------------------------------------------------------------- *)

let report ?hostname ~fig5_ns ~explore_sps () =
  Obs.Json.Obj
    ((match hostname with
     | Some h -> [ ("schema", Obs.Json.String "relaxing-safely-bench-v3");
                   ("hostname", Obs.Json.String h) ]
     | None -> [ ("schema", Obs.Json.String "relaxing-safely-bench-v2") ])
    @ [
        ("ocaml_version", Obs.Json.String "5.1.1");
        ( "groups",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("group", Obs.Json.String "fig5");
                  ( "tests",
                    Obs.Json.List
                      [
                        Obs.Json.Obj
                          [
                            ("name", Obs.Json.String "mark-fast-path");
                            ("ns_per_run", Obs.Json.Float fig5_ns);
                          ];
                      ] );
                ];
            ] );
        ( "checker",
          Obs.Json.Obj [ ("explore_states_per_sec", Obs.Json.Float explore_sps) ] );
      ])

let run_compare ~old_ new_ =
  match Obs.Benchcmp.compare_reports ~old_ new_ with
  | Ok r -> r
  | Error msg -> Alcotest.failf "comparison refused: %s" msg

let test_benchdiff_detects_regression () =
  (* ns/run doubling is a regression; states/sec halving is too *)
  let old_ = report ~hostname:"host-a" ~fig5_ns:100. ~explore_sps:1000. () in
  let new_ = report ~hostname:"host-a" ~fig5_ns:200. ~explore_sps:500. () in
  let r = run_compare ~old_ new_ in
  Alcotest.(check int) "both regressions caught" 2 (List.length r.Obs.Benchcmp.regressions);
  Alcotest.(check bool) "has_regressions" true (Obs.Benchcmp.has_regressions r);
  let worst = List.hd r.Obs.Benchcmp.regressions in
  Alcotest.(check (float 1e-9)) "signed change" 100. worst.Obs.Benchcmp.change_pct;
  Alcotest.(check bool) "render names the loser" true
    (contains (Obs.Benchcmp.render r) "WORSE")

let test_benchdiff_improvement_and_noise () =
  let old_ = report ~hostname:"host-a" ~fig5_ns:100. ~explore_sps:1000. () in
  let new_ = report ~hostname:"host-a" ~fig5_ns:50. ~explore_sps:1100. () in
  let r = run_compare ~old_ new_ in
  Alcotest.(check bool) "no regressions" false (Obs.Benchcmp.has_regressions r);
  Alcotest.(check int) "faster ns/run is an improvement" 1
    (List.length r.Obs.Benchcmp.improvements);
  Alcotest.(check int) "+10%% states/sec is inside the 15%% noise band" 1
    (List.length r.Obs.Benchcmp.unchanged)

let test_benchdiff_refuses_cross_machine () =
  let old_ = report ~hostname:"host-a" ~fig5_ns:100. ~explore_sps:1000. () in
  let new_ = report ~hostname:"host-b" ~fig5_ns:100. ~explore_sps:1000. () in
  match Obs.Benchcmp.compare_reports ~old_ new_ with
  | Ok _ -> Alcotest.fail "cross-machine comparison must be refused"
  | Error msg -> Alcotest.(check bool) "names both hosts" true (contains msg "host-b")

let test_benchdiff_v2_warns () =
  let old_ = report ~fig5_ns:100. ~explore_sps:1000. () in
  let new_ = report ~hostname:"host-a" ~fig5_ns:100. ~explore_sps:1000. () in
  let r = run_compare ~old_ new_ in
  Alcotest.(check bool) "hostname-less report warns" true
    (List.exists (fun w -> contains w "hostname") r.Obs.Benchcmp.warnings)

let test_benchdiff_custom_threshold () =
  let old_ = report ~hostname:"host-a" ~fig5_ns:100. ~explore_sps:1000. () in
  let new_ = report ~hostname:"host-a" ~fig5_ns:110. ~explore_sps:1000. () in
  let strict =
    match Obs.Benchcmp.compare_reports ~threshold:0.05 ~old_ new_ with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "+10%% ns/run regresses at a 5%% threshold" true
    (Obs.Benchcmp.has_regressions strict);
  let default = run_compare ~old_ new_ in
  Alcotest.(check bool) "...but not at the default" false
    (Obs.Benchcmp.has_regressions default)

let suite =
  [
    Alcotest.test_case "tracer: byte-stable under a stubbed clock" `Quick
      test_tracer_byte_stable;
    Alcotest.test_case "tracer: Chrome trace-event shape" `Quick test_tracer_chrome_shape;
    Alcotest.test_case "tracer: ring overflow drops, never corrupts" `Quick
      test_tracer_ring_overflow;
    Alcotest.test_case "tracer: null tracer is inert" `Quick test_tracer_null_is_inert;
    Alcotest.test_case "metrics: histogram hammered by 4 domains" `Quick
      test_histogram_hammered_by_domains;
    Alcotest.test_case "contention: uncontended probe is exact" `Quick
      test_lock_uncontended_counts;
    Alcotest.test_case "contention: contended acquire measures its wait" `Quick
      test_lock_contended_measures_wait;
    Alcotest.test_case "contention: Amdahl estimate round-trips" `Quick
      test_serial_fraction_estimate;
    Alcotest.test_case "par-explore: deterministic steal span" `Quick test_par_explore_steal_span;
    Alcotest.test_case "par-explore: spans + scaling-detail schema" `Quick
      test_par_explore_traces_and_scaling_detail;
    Alcotest.test_case "dashboard: plain renderer" `Quick test_dashboard_plain_renders;
    Alcotest.test_case "reporter: --obs=live spec" `Quick test_reporter_live_spec;
    Alcotest.test_case "benchdiff: regression detected" `Quick test_benchdiff_detects_regression;
    Alcotest.test_case "benchdiff: improvement and noise band" `Quick
      test_benchdiff_improvement_and_noise;
    Alcotest.test_case "benchdiff: cross-machine refusal" `Quick
      test_benchdiff_refuses_cross_machine;
    Alcotest.test_case "benchdiff: v2 report warns" `Quick test_benchdiff_v2_warns;
    Alcotest.test_case "benchdiff: threshold is configurable" `Quick
      test_benchdiff_custom_threshold;
  ]
