(* Tests for the certifying checker (lib/certify): certificate
   round-trips through both producers (jobs=1 store dump, jobs>1
   deterministic sweep) under reduce none/all, byte-determinism across
   producers, certdiff, and the adversarial tamper cases — a tampered
   certificate must fail closed with a diagnostic naming the offending
   fingerprint or header field, never validate. *)

let sc =
  Core.Scenario.make ~label:"cert-test" ~n_muts:1 ~n_refs:2 ~max_mut_ops:1 ~shape:"single" ()

let cfg = sc.Core.Scenario.cfg
let config_hash = Core.Config.hash cfg
let invariants = Core.Scenario.invariants sc
let initial () = (Core.Scenario.model sc).Core.Model.system
let reducer_of mode = Core.Reduction.reducer cfg mode
let run_config = Obs.Json.Obj [ ("test", Obs.Json.String "cert-test") ]

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gccert-test-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ok_or_fail what = function Ok v -> v | Error e -> Alcotest.fail (what ^ ": " ^ e)

(* Produce a certificate the way `gcmodel explore --jobs N` does: N=1
   dumps the explorer's own store (FIFO BFS, stamps are BFS distances),
   N>1 re-derives the table with the deterministic sweep. *)
let make_cert ~jobs ~mode dir =
  let reducer = reducer_of mode in
  let entries, max_depth =
    if jobs <= 1 then begin
      let dump = ref None in
      let on_store st = dump := Some (Certify.Writer.of_store st) in
      let o = Check.Par_explore.run ~jobs:1 ~on_store ?reducer ~invariants (initial ()) in
      Alcotest.(check bool) "run closed without violation" true
        ((not o.Check.Explore.truncated) && o.Check.Explore.violation = None);
      match !dump with
      | None -> Alcotest.fail "on_store never fired"
      | Some r -> ok_or_fail "of_store" r
    end
    else begin
      let o = Check.Par_explore.run ~jobs ?reducer ~invariants (initial ()) in
      Alcotest.(check bool) "parallel run closed without violation" true
        ((not o.Check.Explore.truncated) && o.Check.Explore.violation = None);
      ok_or_fail "sweep" (Certify.Recheck.sweep ~reducer ~invariants (initial ()))
    end
  in
  ok_or_fail "write"
    (Certify.Writer.write ~dir ~config_hash ~reduce:(Reduce.Mode.to_string mode)
       ~invariant_names:(List.map fst invariants) ~run_config ~max_depth entries)

let validate ?(hash = config_hash) ~mode dir =
  Certify.Recheck.validate ~reducer:(reducer_of mode) ~invariants ~config_hash:hash ~dir
    (initial ())

(* -- Round-trips: both producers x reduce none/all ------------------------- *)

let round_trip ~jobs ~mode () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let h = make_cert ~jobs ~mode dir in
  let h', st = ok_or_fail "validate" (validate ~mode dir) in
  Alcotest.(check int) "validated exactly the header's states" h.Certify.Certificate.states
    st.Certify.Recheck.states;
  Alcotest.(check int) "same max depth" h.Certify.Certificate.max_depth
    st.Certify.Recheck.max_depth;
  Alcotest.(check string) "header read back" h.Certify.Certificate.table_digest
    h'.Certify.Certificate.table_digest;
  Alcotest.(check bool) "some transitions were re-derived" true
    (st.Certify.Recheck.transitions > 0)

(* A wrong reduction mode at validation time is a header mismatch, not a
   crash: the certificate asserts closure of the *reduced* relation. *)
let test_mode_is_part_of_the_claim () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let _h = make_cert ~jobs:1 ~mode:Reduce.Mode.All dir in
  match validate ~mode:Reduce.Mode.None_ dir with
  | Ok _ -> Alcotest.fail "validated under the wrong reduction mode"
  | Error e ->
    Alcotest.(check bool) ("names the reduce field: " ^ e) true
      (contains ~sub:"\"reduce\"" e)

(* -- Determinism: both producers emit byte-identical tables ---------------- *)

let test_producers_agree_bytewise () =
  let da = fresh_dir () and db = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf da; rm_rf db) @@ fun () ->
  let ha = make_cert ~jobs:1 ~mode:Reduce.Mode.All da in
  let hb = make_cert ~jobs:4 ~mode:Reduce.Mode.All db in
  Alcotest.(check string) "table digests agree across producers"
    ha.Certify.Certificate.table_digest hb.Certify.Certificate.table_digest;
  let d = ok_or_fail "certdiff" (Certify.Diff.run da db) in
  Alcotest.(check bool) "certdiff sees identical certificates" true (Certify.Diff.identical d)

let test_certdiff_reports_differences () =
  let da = fresh_dir () and db = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf da; rm_rf db) @@ fun () ->
  let _ = make_cert ~jobs:1 ~mode:Reduce.Mode.All da in
  let _ = make_cert ~jobs:1 ~mode:Reduce.Mode.None_ db in
  let d = ok_or_fail "certdiff" (Certify.Diff.run da db) in
  Alcotest.(check bool) "different reductions are not identical" false
    (Certify.Diff.identical d);
  Alcotest.(check bool) "the reduce header delta is reported" true
    (List.exists (fun (f, _, _) -> f = "reduce") d.Certify.Diff.header_deltas)

(* -- Adversarial certificates: each tamper fails closed, naming the
      offender ------------------------------------------------------------- *)

let with_cert f () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let h = make_cert ~jobs:1 ~mode:Reduce.Mode.All dir in
  f dir h

let expect_fail ~what ~subs dir =
  match validate ~mode:Reduce.Mode.All dir with
  | Ok _ -> Alcotest.fail (what ^ ": tampered certificate validated")
  | Error e ->
    List.iter
      (fun sub ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: diagnostic %S mentions %S" what e sub)
          true (contains ~sub e))
      subs

let test_bit_flip =
  with_cert @@ fun dir _h ->
  let path = Certify.Certificate.table_path dir in
  let bytes = In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string in
  let i = Bytes.length bytes / 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x10));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
  expect_fail ~what:"bit flip" ~subs:[ "table.seg"; "digest mismatch" ] dir

let test_truncated_table =
  with_cert @@ fun dir _h ->
  let path = Certify.Certificate.table_path dir in
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 (String.length bytes / 2)));
  expect_fail ~what:"truncation" ~subs:[ "table.seg"; "digest mismatch" ] dir

let test_dropped_obligation =
  with_cert @@ fun dir h ->
  let weakened =
    {
      h with
      Certify.Certificate.obligations =
        List.filter (fun ob -> ob <> "closure") h.Certify.Certificate.obligations;
    }
  in
  Certify.Certificate.write_header ~dir weakened;
  expect_fail ~what:"dropped obligation"
    ~subs:[ "missing closure obligation"; "\"obligations\"" ]
    dir

let test_wrong_config_header =
  with_cert @@ fun dir h ->
  let other =
    Core.Config.hash { cfg with Core.Config.n_refs = cfg.Core.Config.n_refs + 1 }
  in
  Certify.Certificate.write_header ~dir { h with Certify.Certificate.config_hash = other };
  expect_fail ~what:"wrong config" ~subs:[ "\"config_hash\""; "different instance" ] dir

(* Dropping a table entry past the digest (rewriting table + header
   consistently) must still fail: the entry's parent regenerates it as a
   successor and the membership probe misses.  This is the case the
   digest alone cannot catch — the semantic closure check does. *)
let test_dropped_entry =
  with_cert @@ fun dir h ->
  let table = Certify.Certificate.table_path dir in
  let entries = Store.Segment.entries (Store.Segment.load table) in
  (* drop the deepest entry: never the root, and its parent's closure
     check must regenerate it *)
  let victim = ref 0 in
  Array.iteri
    (fun i e ->
      if
        Store.Tiered.meta32_depth e.Store.Segment.meta
        > Store.Tiered.meta32_depth entries.(!victim).Store.Segment.meta
      then victim := i)
    entries;
  let kept = Array.of_list (List.filteri (fun i _ -> i <> !victim) (Array.to_list entries)) in
  let max_depth =
    Array.fold_left
      (fun d e -> max d (Store.Tiered.meta32_depth e.Store.Segment.meta))
      0 kept
  in
  Sys.remove table;
  let (_ : Store.Segment.t) = Store.Segment.write ~path:table ~shard:0 ~seq:0 ~max_depth kept in
  Certify.Certificate.write_header ~dir
    {
      h with
      Certify.Certificate.states = Array.length kept;
      max_depth;
      table_digest = Certify.Certificate.digest_table dir;
    };
  expect_fail ~what:"dropped entry" ~subs:[ "closure miss" ] dir

let suite =
  [
    Alcotest.test_case "round-trip (store dump, reduce all)" `Quick
      (round_trip ~jobs:1 ~mode:Reduce.Mode.All);
    Alcotest.test_case "round-trip (store dump, reduce none)" `Quick
      (round_trip ~jobs:1 ~mode:Reduce.Mode.None_);
    Alcotest.test_case "round-trip (jobs=4 sweep, reduce all)" `Quick
      (round_trip ~jobs:4 ~mode:Reduce.Mode.All);
    Alcotest.test_case "round-trip (jobs=4 sweep, reduce none)" `Quick
      (round_trip ~jobs:4 ~mode:Reduce.Mode.None_);
    Alcotest.test_case "reduce mode is part of the claim" `Quick test_mode_is_part_of_the_claim;
    Alcotest.test_case "producers emit byte-identical tables" `Quick
      test_producers_agree_bytewise;
    Alcotest.test_case "certdiff reports header + entry deltas" `Quick
      test_certdiff_reports_differences;
    Alcotest.test_case "tamper: bit-flipped table byte" `Quick test_bit_flip;
    Alcotest.test_case "tamper: truncated table" `Quick test_truncated_table;
    Alcotest.test_case "tamper: dropped obligation" `Quick test_dropped_obligation;
    Alcotest.test_case "tamper: wrong-config header" `Quick test_wrong_config_header;
    Alcotest.test_case "tamper: dropped entry behind a valid digest" `Quick test_dropped_entry;
  ]
