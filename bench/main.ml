(* Benchmark harness (Bechamel).

   The paper has no performance tables — its evaluation is the invariant
   catalogue and the necessity of each mechanism — so this harness produces
   (a) the shape results each figure's experiment reports (who is safe, who
   breaks, which litmus outcomes appear), and (b) one Bechamel timing group
   per figure for the costs the paper argues about qualitatively: the
   double-checked mark's fast path vs its CAS (Fig. 5, Section 2.3), the
   write-barrier overhead on stores (Fig. 6), TSO vs SC simulation
   (Fig. 9), handshake/cycle costs on the concrete runtime (Figs. 2-4),
   parsing/compiling CIMP (Fig. 7), rendezvous exploration (Fig. 8), and
   checker throughput (Fig. 10). *)

open Bechamel
open Toolkit

(* -- shape results (the "rows the paper reports") -------------------------- *)

let shape_results () =
  Fmt.pr "=== shape results (see EXPERIMENTS.md for the full grids) ===@.";
  Fmt.pr "@.-- Fig. 9: x86-TSO litmus catalogue --@.";
  List.iter (fun v -> Fmt.pr "  %a@." Tso.Litmus.pp_verdict v) (Tso.Catalog.run_all ());
  Fmt.pr "@.-- Fig. 10: safety grid (bounded exhaustive) --@.";
  let row sc safety_only =
    let o = Core.Scenario.explore ~max_states:3_000_000 ~safety_only sc in
    Fmt.pr "  %-34s %a@." sc.Core.Scenario.label Check.Explore.pp_outcome o
  in
  row Core.Scenario.baseline false;
  row Core.Scenario.two_mutators false;
  row Core.Scenario.chain false;
  Fmt.pr "@.-- Fig. 1/6: ablations (each must break) --@.";
  List.iter
    (fun v -> row (Core.Scenario.witness_for v) true)
    [
      Core.Variants.no_deletion_barrier;
      Core.Variants.no_insertion_barrier;
      Core.Variants.alloc_white;
    ];
  Fmt.pr "@."

(* -- timing groups ---------------------------------------------------------- *)

(* Fig. 5: the mark operation.  Fast path: the flag test sees an
   already-marked object and skips the CAS.  CAS path: mark an unmarked
   object (and reset it, so each run pays one CAS + one plain store). *)
let fig5_tests () =
  (* latency:false — the figure measures the paper's bare mechanism (and
     stays comparable with pre-observatory reports); the instrumented
     slow-path cost is the runtime_latency group's business *)
  let sh = Runtime.Rshared.make ~latency:false ~n_slots:16 ~n_fields:1 ~n_muts:0 () in
  Atomic.set sh.Runtime.Rshared.phase Runtime.Rshared.Mark;
  let marked = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_m) in
  let white =
    Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(not (Atomic.get sh.Runtime.Rshared.f_m))
  in
  [
    Test.make ~name:"mark-fast-path"
      (Staged.stage (fun () -> ignore (Runtime.Rshared.mark sh marked [])));
    Test.make ~name:"mark-cas-roundtrip"
      (Staged.stage (fun () ->
           ignore (Runtime.Rshared.mark sh white []);
           (* reset so the next run races the CAS again *)
           Atomic.set sh.Runtime.Rshared.heap.Runtime.Rheap.marks.(white)
             (not (Atomic.get sh.Runtime.Rshared.f_m))));
  ]

(* Fig. 6: store with/without barriers (the mutator-throughput argument for
   the double-checked barrier). *)
let fig6_tests () =
  let sh = Runtime.Rshared.make ~latency:false ~n_slots:16 ~n_fields:1 ~n_muts:1 () in
  let a = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_m) in
  let b = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_m) in
  let with_b = Runtime.Rmutator.make sh 0 ~roots:[ a; b ] in
  let without_b = Runtime.Rmutator.make ~barriers:false sh 0 ~roots:[ a; b ] in
  let sh_marking = Runtime.Rshared.make ~latency:false ~n_slots:16 ~n_fields:1 ~n_muts:1 () in
  Atomic.set sh_marking.Runtime.Rshared.phase Runtime.Rshared.Mark;
  let a' = Runtime.Rheap.alloc sh_marking.Runtime.Rshared.heap ~mark:(Atomic.get sh_marking.Runtime.Rshared.f_m) in
  let b' = Runtime.Rheap.alloc sh_marking.Runtime.Rshared.heap ~mark:(Atomic.get sh_marking.Runtime.Rshared.f_m) in
  let with_b' = Runtime.Rmutator.make sh_marking 0 ~roots:[ a'; b' ] in
  [
    Test.make ~name:"store-no-barriers"
      (Staged.stage (fun () -> Runtime.Rmutator.store without_b a 0 b));
    Test.make ~name:"store-barriers-idle"
      (Staged.stage (fun () -> Runtime.Rmutator.store with_b a 0 b));
    (* during marking, targets already marked: both barriers fast-path *)
    Test.make ~name:"store-barriers-marking"
      (Staged.stage (fun () -> Runtime.Rmutator.store with_b' a' 0 b'));
  ]

(* Figs. 2-4: a full concrete collection cycle, including all handshake
   rounds, against one promptly-polling mutator. *)
let fig2_cycle () =
  let sh = Runtime.Rshared.make ~n_slots:64 ~n_fields:1 ~n_muts:1 () in
  let a = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_a) in
  (* a small rooted chain to trace *)
  let m = Runtime.Rmutator.make sh 0 ~roots:[ a ] in
  let prev = ref a in
  for _ = 1 to 16 do
    let n = Runtime.Rmutator.alloc m in
    if n <> Runtime.Rheap.null then begin
      Runtime.Rmutator.store m !prev 0 n;
      prev := n
    end
  done;
  let stop = Atomic.make false in
  let poller =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Runtime.Rmutator.poll m;
          Domain.cpu_relax ()
        done)
  in
  let test =
    Test.make ~name:"concrete-gc-cycle" (Staged.stage (fun () -> Runtime.Rcollector.cycle sh))
  in
  (test, fun () -> Atomic.set stop true; Domain.join poller)

(* Fig. 7: parse + typecheck + compile a CIMP surface program. *)
let fig7_tests () =
  let _, src, _ = Cimp_lang.Examples.handshake_sketch in
  [
    Test.make ~name:"parse" (Staged.stage (fun () -> ignore (Cimp_lang.Parser.program src)));
    Test.make ~name:"parse-check-compile"
      (Staged.stage (fun () -> ignore (Cimp_lang.Compile.of_source src)));
  ]

(* Fig. 8: exhaustively explore a rendezvous system. *)
let fig8_tests () =
  let _, src, _ = Cimp_lang.Examples.handshake_sketch in
  let sys = Cimp_lang.Compile.of_source src in
  [
    Test.make ~name:"explore-handshake-sketch"
      (Staged.stage (fun () -> ignore (Check.Explore.run ~invariants:[] sys)));
  ]

(* Fig. 9: enumerate all outcomes of SB under both memory models. *)
let fig9_tests () =
  [
    Test.make ~name:"litmus-SB-tso"
      (Staged.stage (fun () -> ignore (Tso.Litmus.outcomes ~mode:Tso.Machine.TSO Tso.Catalog.sb)));
    Test.make ~name:"litmus-SB-sc"
      (Staged.stage (fun () -> ignore (Tso.Litmus.outcomes ~mode:Tso.Machine.SC Tso.Catalog.sb)));
  ]

(* Fig. 10: checker throughput on the GC model — exhaustive closure of a
   small instance and a fixed-length random walk. *)
let fig10_tests () =
  let sc = Core.Scenario.make ~label:"bench" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let model = Core.Scenario.model sc in
  let invs = Core.Scenario.invariants sc in
  let walk_sc =
    Core.Scenario.make ~label:"bench-walk" ~n_refs:3 ~shape:"chain3" ~max_cycles:0 ~max_mut_ops:0 ()
  in
  let walk_model = Core.Scenario.model walk_sc in
  let walk_invs = Core.Scenario.invariants walk_sc in
  [
    Test.make ~name:"exhaustive-closure-3k-states"
      (Staged.stage (fun () -> ignore (Check.Explore.run ~invariants:invs model.Core.Model.system)));
    Test.make ~name:"random-walk-2k-steps"
      (Staged.stage (fun () ->
           ignore
             (Check.Random_walk.run ~steps:2_000 ~invariants:walk_invs walk_model.Core.Model.system)));
  ]

(* -- the Bechamel driver ----------------------------------------------------- *)

(* Run one named group; print the human lines and return the rows for the
   machine-readable report. *)
let run_group (gname, test) =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let results = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock results in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows =
    List.map
      (fun (name, ols_result) ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] ->
          Fmt.pr "  %-44s %12.1f ns/run@." name est;
          (name, Some est)
        | _ ->
          Fmt.pr "  %-44s (no estimate)@." name;
          (name, None))
      (List.sort compare rows)
  in
  (gname, rows)

(* Checker throughput on the fig10 instances, measured directly (states/sec
   and steps/sec are the units every perf PR reports against; ns/run of a
   whole closure is not comparable across instance sizes). *)
let checker_throughput () =
  let sc = Core.Scenario.make ~label:"bench" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let o = Core.Scenario.explore sc in
  let walk_sc =
    Core.Scenario.make ~label:"bench-walk" ~n_refs:3 ~shape:"chain3" ~max_cycles:0 ~max_mut_ops:0 ()
  in
  let w = Core.Scenario.random_walk ~steps:50_000 walk_sc in
  let explore_rate =
    if o.Check.Explore.elapsed > 0. then
      float_of_int o.Check.Explore.states /. o.Check.Explore.elapsed
    else 0.
  in
  let walk_rate =
    if w.Check.Random_walk.elapsed > 0. then
      float_of_int w.Check.Random_walk.steps_taken /. w.Check.Random_walk.elapsed
    else 0.
  in
  Fmt.pr "  %-44s %12.0f states/s@." "checker-explore-throughput" explore_rate;
  Fmt.pr "  %-44s %12.0f steps/s@." "checker-walk-throughput" walk_rate;
  Obs.Json.Obj
    [
      ("explore_states", Obs.Json.Int o.Check.Explore.states);
      ("explore_elapsed_s", Obs.Json.Float o.Check.Explore.elapsed);
      ("explore_states_per_sec", Obs.Json.Float explore_rate);
      ("walk_steps", Obs.Json.Int w.Check.Random_walk.steps_taken);
      ("walk_elapsed_s", Obs.Json.Float w.Check.Random_walk.elapsed);
      ("walk_steps_per_sec", Obs.Json.Float walk_rate);
    ]

(* -- checker-par: speedup vs domains ----------------------------------------

   Work-stealing parallel BFS on the fig10 exhaustive-closure instance,
   exploring the identical state space at 1, 2 and 4 domains.  The
   speedup column (parallel states/sec over sequential states/sec) is
   what perf PRs diff; the same rows are emitted into the report under
   "checker_par", and benchdiff tracks both states_per_sec and
   speedup_vs_seq per job count. *)

let checker_par_jobs = [ 1; 2; 4 ]

let checker_par () =
  let sc =
    Core.Scenario.make ~label:"fig10/exhaustive-closure" ~n_refs:2 ~shape:"single"
      ~max_mut_ops:2 ()
  in
  let rate (o : _ Check.Explore.outcome) =
    if o.Check.Explore.elapsed > 0. then
      float_of_int o.Check.Explore.states /. o.Check.Explore.elapsed
    else 0.
  in
  (* run through a memory reporter so the parallel runs' scaling-detail
     record (serial fraction, lock waits, steal and termination-probe
     counters — see Par_explore) lands in the report next to the
     measured speedup it predicts *)
  let explore_with_detail jobs =
    let obs, snapshot = Obs.Reporter.memory () in
    let o = Core.Scenario.explore ~jobs ~obs sc in
    let detail =
      List.find_opt
        (fun r ->
          match Obs.Json.member "event" r with
          | Some (Obs.Json.String "scaling-detail") -> true
          | _ -> false)
        (snapshot ())
    in
    (o, Option.value detail ~default:Obs.Json.Null)
  in
  let seq, _ = explore_with_detail 1 in
  let seq_rate = rate seq in
  let rows =
    List.map
      (fun jobs ->
        let o, detail = if jobs = 1 then (seq, Obs.Json.Null) else explore_with_detail jobs in
        let r = rate o in
        let speedup = if seq_rate > 0. then r /. seq_rate else 0. in
        Fmt.pr "  %-44s %12.0f states/s  %5.2fx@."
          (Fmt.str "checker-par-jobs-%d (%d states)" jobs o.Check.Explore.states)
          r speedup;
        if o.Check.Explore.states <> seq.Check.Explore.states then
          Fmt.pr "  WARNING: jobs=%d visited %d states, sequential visited %d@." jobs
            o.Check.Explore.states seq.Check.Explore.states;
        Obs.Json.Obj
          [
            ("jobs", Obs.Json.Int jobs);
            ("states", Obs.Json.Int o.Check.Explore.states);
            ("transitions", Obs.Json.Int o.Check.Explore.transitions);
            ("elapsed_s", Obs.Json.Float o.Check.Explore.elapsed);
            ("states_per_sec", Obs.Json.Float r);
            ("speedup_vs_seq", Obs.Json.Float speedup);
            ("scaling_detail", detail);
          ])
      checker_par_jobs
  in
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.String sc.Core.Scenario.label);
      ("rows", Obs.Json.List rows);
    ]

(* recommended_domains, derived from measurement rather than from
   [Domain.recommended_domain_count]: the largest measured job count
   whose measured speedup is >= 1.1x and whose own Amdahl estimate
   agrees — predicted speedup 1/(s + (1-s)/jobs) >= 1.1, with s the
   serial fraction the run's scaling-detail record measured.  A row
   without a scaling-detail estimate falls back to the measurement
   alone.  1 if no row qualifies (running the checker parallel is not
   worth it on this host).  The rule is documented in README's
   benchmark section. *)
let recommended_domains par =
  let amdahl_ok jobs speedup row =
    match
      Option.bind (Obs.Json.member "scaling_detail" row) (fun d ->
          Option.bind (Obs.Json.member "serial_fraction" d) Obs.Json.to_float)
    with
    | Some s when s >= 0. && s <= 1. ->
      1. /. (s +. ((1. -. s) /. float_of_int jobs)) >= 1.1
    | _ -> speedup >= 1.1
  in
  let qualifies row =
    match
      ( Option.bind (Obs.Json.member "jobs" row) Obs.Json.to_int,
        Option.bind (Obs.Json.member "speedup_vs_seq" row) Obs.Json.to_float )
    with
    | Some jobs, Some speedup when jobs > 1 && speedup >= 1.1 && amdahl_ok jobs speedup row ->
      Some jobs
    | _ -> None
  in
  let rows =
    match Obs.Json.member "rows" par with Some (Obs.Json.List l) -> l | _ -> []
  in
  List.fold_left
    (fun acc row -> match qualifies row with Some j -> max acc j | None -> acc)
    1 rows

(* -- checker-store: states per GB under a memory budget ----------------------

   The tiered seen-set ([lib/store]) on the checker-par instance: an
   all-RAM row (the pool with an effectively unbounded budget, so peak
   resident bytes is the honest full-store footprint) against
   forced-spill rows whose budgets push most states into on-disk
   segments.  The headline metric is states-per-GB of peak resident
   memory — the capacity the budget buys — next to the throughput cost
   of the disk probes; both land under "checker_store" in the report and
   benchdiff tracks them (higher is better). *)

let checker_store_budgets = [ ("all-ram", max_int / 2); ("budget-256k", 256 * 1024); ("budget-64k", 64 * 1024) ]

let checker_store () =
  let sc =
    Core.Scenario.make ~label:"fig10/exhaustive-closure" ~n_refs:2 ~shape:"single"
      ~max_mut_ops:2 ()
  in
  let model = Core.Scenario.model sc in
  let invs = Core.Scenario.invariants sc in
  let detail_int d k = Option.bind (Obs.Json.member k d) Obs.Json.to_int in
  let run mem_budget =
    let obs, snapshot = Obs.Reporter.memory () in
    let o =
      Check.Par_explore.run ~jobs:1 ~mem_budget ~obs ~invariants:invs model.Core.Model.system
    in
    let detail =
      Option.value ~default:Obs.Json.Null
        (List.find_opt
           (fun r ->
             match Obs.Json.member "event" r with
             | Some (Obs.Json.String "scaling-detail") -> true
             | _ -> false)
           (snapshot ()))
    in
    (o, detail)
  in
  let baseline = ref 0 in
  let rows =
    List.map
      (fun (label, budget) ->
        let o, detail = run budget in
        let rate =
          if o.Check.Explore.elapsed > 0. then
            float_of_int o.Check.Explore.states /. o.Check.Explore.elapsed
          else 0.
        in
        let peak = Option.value ~default:0 (detail_int detail "peak_bytes_resident") in
        let spilled = Option.value ~default:0 (detail_int detail "spilled_states") in
        let segments = Option.value ~default:0 (detail_int detail "segments") in
        let disk_bytes = Option.value ~default:0 (detail_int detail "disk_bytes") in
        let states_per_gb =
          if peak > 0 then float_of_int o.Check.Explore.states /. (float_of_int peak /. 1e9)
          else 0.
        in
        if label = "all-ram" then baseline := o.Check.Explore.states
        else if o.Check.Explore.states <> !baseline then
          Fmt.pr "  WARNING: %s visited %d states, all-RAM visited %d@." label
            o.Check.Explore.states !baseline;
        Fmt.pr "  %-44s %10.0f states/GB %10.0f states/s  peak %s, %d spilled, %d segs@."
          (Fmt.str "checker-store-%s (%d states)" label o.Check.Explore.states)
          states_per_gb rate
          (Fmt.str "%.1fMB" (float_of_int peak /. 1048576.))
          spilled segments;
        Obs.Json.Obj
          [
            ("label", Obs.Json.String label);
            ( "mem_budget",
              if label = "all-ram" then Obs.Json.Null else Obs.Json.Int budget );
            ("states", Obs.Json.Int o.Check.Explore.states);
            ("elapsed_s", Obs.Json.Float o.Check.Explore.elapsed);
            ("states_per_sec", Obs.Json.Float rate);
            ("peak_bytes_resident", Obs.Json.Int peak);
            ("states_per_gb", Obs.Json.Float states_per_gb);
            ("spilled_states", Obs.Json.Int spilled);
            ("segments", Obs.Json.Int segments);
            ("disk_bytes", Obs.Json.Int disk_bytes);
          ])
      checker_store_budgets
  in
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.String sc.Core.Scenario.label);
      ("domains_available", Obs.Json.Int (Domain.recommended_domain_count ()));
      ("rows", Obs.Json.List rows);
    ]

(* -- runtime-latency: the concrete runtime's latency observatory ------------

   Short harness runs per mutator-domain count, reporting allocation
   throughput and the HDR handshake/pause percentiles the latency
   section (Harness.stats.latency) carries, plus a single-threaded
   barrier-overhead measurement.  Rows are keyed by the *requested*
   mutator count (1/2/4/8) so the series stays diffable across hosts;
   each row records the count actually run, clamped to
   domains_available, so cross-host diffs are honest about what was
   measured.  benchdiff gates alloc_per_sec/ops_per_sec (higher better)
   and the hs/pause percentiles (lower better, with a widened noise
   allowance on the tails). *)

let runtime_latency_muts = [ 1; 2; 4; 8 ]

let runtime_latency_duration = 0.6

(* (store-with-barriers - store-without) / store-without on the idle
   phase, single-threaded and with the latency instrumentation off, so
   the number is the barrier's cost alone — not clock reads, not
   scheduling noise from the harness's other domains. *)
let barrier_overhead_pct () =
  let sh = Runtime.Rshared.make ~latency:false ~n_slots:16 ~n_fields:1 ~n_muts:1 () in
  let a = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_m) in
  let b = Runtime.Rheap.alloc sh.Runtime.Rshared.heap ~mark:(Atomic.get sh.Runtime.Rshared.f_m) in
  let with_b = Runtime.Rmutator.make sh 0 ~roots:[ a; b ] in
  let without_b = Runtime.Rmutator.make ~barriers:false sh 0 ~roots:[ a; b ] in
  let time m =
    for _ = 1 to 100_000 do
      Runtime.Rmutator.store m a 0 b
    done;
    let t0 = Obs.Clock.monotonic_ns () in
    for _ = 1 to 1_000_000 do
      Runtime.Rmutator.store m a 0 b
    done;
    Obs.Clock.monotonic_ns () - t0
  in
  let without_ns = time without_b in
  let with_ns = time with_b in
  if without_ns > 0 then 100. *. float_of_int (with_ns - without_ns) /. float_of_int without_ns
  else 0.

let runtime_latency () =
  let domains_available = Domain.recommended_domain_count () in
  let overhead = barrier_overhead_pct () in
  Fmt.pr "  %-44s %11.1f %%@." "runtime-barrier-overhead (idle stores)" overhead;
  let pct h k =
    match Option.bind (Obs.Json.member k h) Obs.Json.to_int with Some v -> v | None -> 0
  in
  let rows =
    List.map
      (fun requested ->
        let actual = max 1 (min requested domains_available) in
        let s =
          Runtime.Harness.run ~n_muts:actual ~n_slots:512 ~n_fields:2
            ~duration:runtime_latency_duration ()
        in
        let lat = s.Runtime.Harness.latency in
        let sect k = Option.value ~default:Obs.Json.Null (Obs.Json.member k lat) in
        let hs = sect "hs_round" and pause = sect "pause" in
        let alloc_rate = float_of_int s.Runtime.Harness.allocs /. runtime_latency_duration in
        let ops_rate = float_of_int s.Runtime.Harness.ops /. runtime_latency_duration in
        Fmt.pr
          "  %-44s %10.0f allocs/s %10.0f ops/s  hs p50/p99/p99.9/max %.2f/%.2f/%.2f/%.2f \
           ms  stalls %d@."
          (Fmt.str "runtime-latency-muts-%d (ran %d)" requested actual)
          alloc_rate ops_rate
          (float_of_int (pct hs "p50_ns") /. 1e6)
          (float_of_int (pct hs "p99_ns") /. 1e6)
          (float_of_int (pct hs "p999_ns") /. 1e6)
          (float_of_int (pct hs "max_ns") /. 1e6)
          s.Runtime.Harness.alloc_stalls;
        (match s.Runtime.Harness.violation with
        | None -> ()
        | Some m -> Fmt.pr "  WARNING: runtime-latency muts=%d run was UNSAFE: %s@." requested m);
        Obs.Json.Obj
          [
            ("n_muts_requested", Obs.Json.Int requested);
            ("n_muts", Obs.Json.Int actual);
            ("duration_s", Obs.Json.Float runtime_latency_duration);
            ("cycles", Obs.Json.Int s.Runtime.Harness.cycles);
            ("ops", Obs.Json.Int s.Runtime.Harness.ops);
            ("allocs", Obs.Json.Int s.Runtime.Harness.allocs);
            ("alloc_per_sec", Obs.Json.Float alloc_rate);
            ("ops_per_sec", Obs.Json.Float ops_rate);
            ("alloc_stalls", Obs.Json.Int s.Runtime.Harness.alloc_stalls);
            ("hs", hs);
            ("hs_by_type", sect "hs_round_by_type");
            ("pause", pause);
            ("mark", sect "mark");
            ("sweep", sect "sweep");
            ("barrier_slow", sect "barrier_slow");
            ("barrier_fast_fraction", sect "barrier_fast_fraction");
          ])
      runtime_latency_muts
  in
  Obs.Json.Obj
    [
      ("domains_available", Obs.Json.Int domains_available);
      ("barrier_overhead_pct", Obs.Json.Float overhead);
      ("rows", Obs.Json.List rows);
    ]

(* -- checker-reduce: state-space reduction ----------------------------------

   Distinct states and wall-clock for each reduction mode on closing
   scenarios.  The "states" column is the subsystem's whole point (how
   much of the space the reducers collapse); states/sec shows what the
   canonicalization costs per visited state.  Same rows under
   "checker_reduce" in the report. *)

let checker_reduce () =
  let scenario sc =
    let rows =
      List.map
        (fun mode ->
          let o = Core.Scenario.explore ~max_states:5_000_000 ~reduce:mode sc in
          let rate =
            if o.Check.Explore.elapsed > 0. then
              float_of_int o.Check.Explore.states /. o.Check.Explore.elapsed
            else 0.
          in
          Fmt.pr "  %-44s %10d states %8.2f s  %10.0f states/s@."
            (Fmt.str "checker-reduce-%s (%s)" (Reduce.Mode.to_string mode) sc.Core.Scenario.label)
            o.Check.Explore.states o.Check.Explore.elapsed rate;
          if o.Check.Explore.violation <> None || o.Check.Explore.truncated then
            Fmt.pr "  WARNING: reduce=%s on %s did not close clean@."
              (Reduce.Mode.to_string mode) sc.Core.Scenario.label;
          Obs.Json.Obj
            [
              ("reduce", Obs.Json.String (Reduce.Mode.to_string mode));
              ("states", Obs.Json.Int o.Check.Explore.states);
              ("transitions", Obs.Json.Int o.Check.Explore.transitions);
              ("elapsed_s", Obs.Json.Float o.Check.Explore.elapsed);
              ("states_per_sec", Obs.Json.Float rate);
            ])
        Reduce.Mode.all_modes
    in
    Obs.Json.Obj
      [
        ("scenario", Obs.Json.String sc.Core.Scenario.label);
        ("rows", Obs.Json.List rows);
      ]
  in
  Obs.Json.List [ scenario Core.Scenario.baseline; scenario Core.Scenario.two_mutators ]

(* -- checker-certify: recheck cost vs explore, certificate size --------------

   The certifying checker's two headline numbers on the two-mutator
   closing instance: how much of a certifying explore's wall time the
   independent recheck costs, and how many table bytes the certificate
   spends per state.  The validator re-derives every verdict and every
   closure edge semantically, so the ratio is a constant fraction of the
   explore by construction (~0.8 on this host — DESIGN.md §14 discusses
   why, and where the <=0.5 regimes are); the point of tracking it is
   catching a *relative* regression in either direction — a jump toward
   1.0 means the validator grew overhead, a drop toward 0 means it
   stopped re-deriving something.  Rows land under "checker_certify". *)

let checker_certify () =
  let sc = Core.Scenario.two_mutators in
  let mode = Reduce.Mode.All in
  let reducer = Core.Reduction.reducer sc.Core.Scenario.cfg mode in
  let invariants = Core.Scenario.invariants sc in
  let initial = (Core.Scenario.model sc).Core.Model.system in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) (Fmt.str "bench-cert-%d" (Unix.getpid ()))
  in
  let dump = ref None in
  let on_store st = dump := Some (Certify.Writer.of_store st) in
  let t0 = Unix.gettimeofday () in
  let o = Check.Par_explore.run ~jobs:1 ~on_store ?reducer ~invariants initial in
  let entries, max_depth =
    match !dump with
    | Some (Ok r) -> r
    | Some (Error e) -> Fmt.failwith "checker-certify: certificate dump failed: %s" e
    | None -> Fmt.failwith "checker-certify: on_store never fired"
  in
  (match
     Certify.Writer.write ~dir ~config_hash:(Core.Config.hash sc.Core.Scenario.cfg)
       ~reduce:(Reduce.Mode.to_string mode)
       ~invariant_names:(List.map fst invariants)
       ~run_config:(Obs.Json.Obj [ ("bench", Obs.Json.String "checker-certify") ])
       ~max_depth entries
   with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "checker-certify: write failed: %s" e);
  let explore_certify_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let stats =
    match
      Certify.Recheck.validate ~reducer ~invariants
        ~config_hash:(Core.Config.hash sc.Core.Scenario.cfg) ~dir initial
    with
    | Ok (_, st) -> st
    | Error e -> Fmt.failwith "checker-certify: recheck failed: %s" e
  in
  let recheck_s = Unix.gettimeofday () -. t1 in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  let ratio = if explore_certify_s > 0. then recheck_s /. explore_certify_s else 0. in
  let bytes_per_state =
    if o.Check.Explore.states > 0 then
      float_of_int stats.Certify.Recheck.table_bytes /. float_of_int o.Check.Explore.states
    else 0.
  in
  Fmt.pr "  %-44s %10d states %8.2f s@."
    (Fmt.str "checker-certify-explore (%s)" sc.Core.Scenario.label)
    o.Check.Explore.states explore_certify_s;
  Fmt.pr "  %-44s %10d states %8.2f s  ratio %.2f@." "checker-certify-recheck"
    stats.Certify.Recheck.states recheck_s ratio;
  Fmt.pr "  %-44s %10d bytes  %8.1f bytes/state@." "checker-certify-table"
    stats.Certify.Recheck.table_bytes bytes_per_state;
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.String sc.Core.Scenario.label);
      ("reduce", Obs.Json.String (Reduce.Mode.to_string mode));
      ("states", Obs.Json.Int o.Check.Explore.states);
      ("explore_certify_s", Obs.Json.Float explore_certify_s);
      ("recheck_s", Obs.Json.Float recheck_s);
      ("recheck_ratio", Obs.Json.Float ratio);
      ("recheck_states_per_sec", Obs.Json.Float
         (if recheck_s > 0. then float_of_int stats.Certify.Recheck.states /. recheck_s else 0.));
      ("table_bytes", Obs.Json.Int stats.Certify.Recheck.table_bytes);
      ("bytes_per_state", Obs.Json.Float bytes_per_state);
    ]

(* -- campaign: mutation kills, states and wall-time to detection -------------

   The armed mutant population (every site the static analysis expects the
   checker to kill) plus the five ablations, against the default campaign
   suite.  The per-mutant states-to-kill / time-to-kill / counterexample
   length are the numbers a detection-latency regression would move; the
   expected-equivalent mutants are excluded because their cost is just
   "explore the whole space N times" (that is checker-reduce's job). *)

let campaign_bench () =
  let mutants =
    List.filter
      (fun (m : Mutate.Campaign.mutant) -> not m.Mutate.Campaign.expected_equivalent)
      (Mutate.Campaign.default_mutants ())
  in
  let o = Mutate.Campaign.run ~budget:400_000 ~mutants () in
  let s = Mutate.Kill_matrix.stats o in
  List.iter
    (fun (e : Mutate.Campaign.entry) ->
      match e.Mutate.Campaign.classification with
      | Mutate.Campaign.Killed k ->
        Fmt.pr "  %-44s %8d states %8.3f s  ce=%d  (%s/%s)@."
          e.Mutate.Campaign.mutant.Mutate.Campaign.name k.Mutate.Campaign.states_to_kill
          k.Mutate.Campaign.time_to_kill k.Mutate.Campaign.ce_length k.Mutate.Campaign.invariant
          k.Mutate.Campaign.conjunct
      | Mutate.Campaign.Survived _ ->
        Fmt.pr "  WARNING: armed mutant %s survived@." e.Mutate.Campaign.mutant.Mutate.Campaign.name
      | Mutate.Campaign.Errored msg ->
        Fmt.pr "  WARNING: mutant %s errored: %s@." e.Mutate.Campaign.mutant.Mutate.Campaign.name msg)
    o.Mutate.Campaign.entries;
  Fmt.pr "  %-44s %8d/%d killed@." "campaign-armed-kill-count" s.Mutate.Kill_matrix.armed_killed
    s.Mutate.Kill_matrix.armed;
  Obs.Json.Obj
    [
      ("budget", Obs.Json.Int o.Mutate.Campaign.budget);
      ("summary", Mutate.Kill_matrix.stats_json s);
      ( "mutants",
        Obs.Json.List
          (List.map
             (fun (e : Mutate.Campaign.entry) ->
               Obs.Json.Obj
                 ([
                    ("mutant", Obs.Json.String e.Mutate.Campaign.mutant.Mutate.Campaign.name);
                    ("operator", Obs.Json.String e.Mutate.Campaign.mutant.Mutate.Campaign.operator);
                  ]
                 @ Mutate.Campaign.classification_fields e.Mutate.Campaign.classification
                 @ [
                     ("states_total", Obs.Json.Int e.Mutate.Campaign.states_total);
                     ("elapsed_total", Obs.Json.Float e.Mutate.Campaign.elapsed_total);
                   ]))
             o.Mutate.Campaign.entries) );
    ]

(* The machine-readable report: one record per Bechamel group, the checker
   throughput block, and the checker-par / checker-reduce / campaign
   blocks.  Written next to the text output so perf PRs can diff
   BENCH_*.json across revisions.  The path is a CLI flag (-o FILE) so
   revisions can write side by side. *)
let bench_report_file = ref "BENCH_10.json"
let force_gap = ref false
let against_file : string option ref = ref None

let parse_cli () =
  Arg.parse
    [
      ("-o", Arg.Set_string bench_report_file, "FILE  report path (default BENCH_10.json)");
      ("--out", Arg.Set_string bench_report_file, "FILE  same as -o");
      ( "--force",
        Arg.Set force_gap,
        "  write the report even if earlier BENCH_<n>.json files in the series are missing" );
      ( "--against",
        Arg.String (fun f -> against_file := Some f),
        "FILE  after writing, diff the new report against FILE (see `gcmodel benchdiff`); \
         exits 1 on a regression past the noise threshold" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [-o FILE] [--force] [--against FILE]"

(* BENCH_<n>.json reports form a per-revision series that perf PRs diff
   pairwise; a missing predecessor is a silent hole those diffs then skip
   over (PR 3's run defaulted BENCH_2.json away exactly like that).
   Refuse the write up front — before minutes of benchmarking — unless
   --force acknowledges the gap. *)
let series_index file =
  let base = Filename.basename file in
  if
    String.length base > 11
    && String.sub base 0 6 = "BENCH_"
    && Filename.check_suffix base ".json"
  then int_of_string_opt (String.sub base 6 (String.length base - 11))
  else None

let check_series () =
  match series_index !bench_report_file with
  | None -> ()
  | Some n ->
    let dir = Filename.dirname !bench_report_file in
    let missing =
      List.filter
        (fun k -> not (Sys.file_exists (Filename.concat dir (Fmt.str "BENCH_%d.json" k))))
        (List.init (max 0 (n - 1)) (fun i -> i + 1))
    in
    if missing <> [] && not !force_gap then
      Fmt.failwith
        "refusing to write %s: missing earlier report%s in the series: %s — regenerate with \
         `bench -o BENCH_<n>.json`, or pass --force to accept the gap"
        !bench_report_file
        (if List.length missing = 1 then "" else "s")
        (String.concat ", " (List.map (Fmt.str "BENCH_%d.json") missing))

let write_report groups checker checker_par checker_store runtime_latency checker_reduce
    checker_certify campaign =
  let group_record (gname, rows) =
    Obs.Json.Obj
      [
        ("group", Obs.Json.String gname);
        ( "tests",
          Obs.Json.List
            (List.map
               (fun (name, est) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.String name);
                     ( "ns_per_run",
                       match est with Some e -> Obs.Json.Float e | None -> Obs.Json.Null );
                   ])
               rows) );
      ]
  in
  (* provenance (schema v3): benchmark numbers are only comparable on the
     same machine, and a diff against an unknown revision is uninterpretable
     — benchdiff refuses cross-hostname comparisons outright *)
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, c when c <> "" -> c
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let report =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "relaxing-safely-bench-v3");
        ("ocaml_version", Obs.Json.String Sys.ocaml_version);
        ("git_commit", Obs.Json.String git_commit);
        ("hostname", Obs.Json.String (Unix.gethostname ()));
        ("domains_available", Obs.Json.Int (Domain.recommended_domain_count ()));
        (* measured, not the runtime heuristic — see [recommended_domains] *)
        ("recommended_domains", Obs.Json.Int (recommended_domains checker_par));
        ("groups", Obs.Json.List (List.map group_record groups));
        ("checker", checker);
        ("checker_par", checker_par);
        ("checker_store", checker_store);
        ("runtime_latency", runtime_latency);
        ("checker_reduce", checker_reduce);
        ("checker_certify", checker_certify);
        ("campaign", campaign);
      ]
  in
  let oc = open_out !bench_report_file in
  output_string oc (Obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." !bench_report_file

let () =
  parse_cli ();
  check_series ();
  shape_results ();
  Fmt.pr "=== timings (Bechamel, monotonic clock) ===@.";
  let cycle_test, cleanup = fig2_cycle () in
  let groups =
    List.map run_group
      [
        ("fig5", Test.make_grouped ~name:"fig5" (fig5_tests ()));
        ("fig6", Test.make_grouped ~name:"fig6" (fig6_tests ()));
        ("fig2", Test.make_grouped ~name:"fig2" [ cycle_test ]);
        ("fig7", Test.make_grouped ~name:"fig7" (fig7_tests ()));
        ("fig8", Test.make_grouped ~name:"fig8" (fig8_tests ()));
        ("fig9", Test.make_grouped ~name:"fig9" (fig9_tests ()));
        ("fig10", Test.make_grouped ~name:"fig10" (fig10_tests ()));
      ]
  in
  cleanup ();
  let checker = checker_throughput () in
  Fmt.pr "=== checker-par (speedup vs domains, %d available) ===@."
    (Domain.recommended_domain_count ());
  let checker_par = checker_par () in
  Fmt.pr "  %-44s %12d@." "recommended-domains (measured)" (recommended_domains checker_par);
  if Domain.recommended_domain_count () < 4 then
    Fmt.pr
      "  NOTE: only %d domain%s available on this host — the checker-par speedup rows (and \
       the >2x-at-4-domains expectation) need a >=4-core host to be meaningful@."
      (Domain.recommended_domain_count ())
      (if Domain.recommended_domain_count () = 1 then "" else "s");
  Fmt.pr "=== checker-store (states per GB under a memory budget) ===@.";
  let checker_store = checker_store () in
  Fmt.pr "=== runtime-latency (allocation throughput, handshake/pause percentiles) ===@.";
  if Domain.recommended_domain_count () < 4 then
    Fmt.pr
      "  NOTE: only %d domain%s available on this host — the runtime-latency rows clamp \
       their mutator counts to it (each row records the n_muts actually run), so the \
       1/2/4/8-mutator spread needs a >=4-core host to be meaningful@."
      (Domain.recommended_domain_count ())
      (if Domain.recommended_domain_count () = 1 then "" else "s");
  let runtime_latency = runtime_latency () in
  Fmt.pr "=== checker-reduce (states and wall-clock per mode) ===@.";
  let checker_reduce = checker_reduce () in
  Fmt.pr "=== checker-certify (recheck cost vs explore, certificate size) ===@.";
  let checker_certify = checker_certify () in
  Fmt.pr "=== campaign (mutation kills: states and time to detection) ===@.";
  let campaign = campaign_bench () in
  write_report groups checker checker_par checker_store runtime_latency checker_reduce
    checker_certify campaign;
  (match !against_file with
  | None -> ()
  | Some old_path -> (
    Fmt.pr "=== benchdiff vs %s ===@." old_path;
    match Obs.Benchcmp.compare_files ~old_path !bench_report_file with
    | Error msg ->
      Fmt.epr "benchdiff: %s@." msg;
      exit 2
    | Ok r ->
      print_string
        (Obs.Benchcmp.render ~old_name:(Filename.basename old_path)
           ~new_name:(Filename.basename !bench_report_file) r);
      if Obs.Benchcmp.has_regressions r then exit 1));
  Fmt.pr "done.@."
